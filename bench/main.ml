(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index) and runs Bechamel microbenchmarks
   of BFC's per-packet dataplane operations.

   Usage:
     dune exec bench/main.exe                 -- all targets, quick profile
     dune exec bench/main.exe -- fig9 fig13   -- selected targets
     dune exec bench/main.exe -- --profile paper fig11
     dune exec bench/main.exe -- --jobs 8 fig12   -- sweeps on 8 domains
     dune exec bench/main.exe -- --micro      -- only the microbenchmarks
     dune exec bench/main.exe -- --macro      -- engine macro benchmark:
                                                 heap-vs-wheel A/B on the
                                                 same workload (writes
                                                 BENCH_engine.json)
     dune exec bench/main.exe -- --sched      -- scheduler microbenchmark:
                                                 Heap vs Wheel push/pop and
                                                 rearm throughput at 1k/32k/
                                                 256k pending events (adds a
                                                 "sched" block to
                                                 BENCH_engine.json; combines
                                                 with --macro)
     dune exec bench/main.exe -- --stress     -- events/sec under fault load
                                                 (flap-storm scenario +
                                                 injector + stress detectors)
                                                 vs the clean run (adds a
                                                 "stress" block; combines
                                                 with --macro/--sched)
     dune exec bench/main.exe -- --ir         -- hand-written dataplane vs
                                                 compiled pipeline IR on the
                                                 same workload: equal event
                                                 counts asserted, events/sec
                                                 ratio recorded (adds an "ir"
                                                 block; combines with the
                                                 flags above)
     dune exec bench/main.exe -- --pdes       -- sequential vs 2-shard PDES
                                                 on the same workload: output
                                                 equality asserted, wall-clock
                                                 ratio recorded with detected
                                                 core count (adds a "pdes"
                                                 block; combines with the
                                                 flags above)
     dune exec bench/main.exe -- --streaming -- sketch accuracy vs exact
                                                 on the same run, plus the
                                                 run_stream memory-scaling
                                                 legs (N/4 and N streaming
                                                 flows vs an exact baseline;
                                                 N = BFC_STREAM_FLOWS or 2M;
                                                 adds a "streaming" block)
     dune exec bench/main.exe -- --engine-profile
                                              -- one quick run, engine
                                                 self-profile JSON on stdout *)

module Experiments = Bfc_sim.Experiments
module Exp_common = Bfc_sim.Exp_common
module Pdes = Bfc_sim.Pdes
module Pool = Bfc_sim.Pool
module Runner = Bfc_sim.Runner
module Scheme = Bfc_sim.Scheme
module Sim = Bfc_engine.Sim

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the constant-time per-packet operations the
   paper argues fit a switch pipeline (§3.3). *)

let micro_tests () =
  let open Bechamel in
  let ft = Bfc_core.Flow_table.create ~egresses:32 ~queues_per_port:32 ~mult:100 in
  let pc = Bfc_core.Pause_counter.create ~ingresses:32 ~max_upstream_q:128 in
  let rng = Bfc_util.Rng.create 99 in
  let dqa = Bfc_core.Dqa.create ~egresses:32 ~queues:31 ~policy:Bfc_core.Dqa.Dynamic ~rng in
  let counter = ref 0 in
  let t_ft =
    Test.make ~name:"flow_table lookup+update"
      (Staged.stage (fun () ->
           incr counter;
           let e = Bfc_core.Flow_table.entry ft ~egress:(!counter land 31) ~fid_hash:!counter in
           e.Bfc_core.Flow_table.size <- e.Bfc_core.Flow_table.size + 1;
           e.Bfc_core.Flow_table.size <- e.Bfc_core.Flow_table.size - 1))
  in
  let t_pc =
    Test.make ~name:"pause_counter incr+decr"
      (Staged.stage (fun () ->
           incr counter;
           let ingress = !counter land 31 and upstream_q = !counter land 127 in
           ignore (Bfc_core.Pause_counter.incr pc ~ingress ~upstream_q);
           ignore (Bfc_core.Pause_counter.decr pc ~ingress ~upstream_q)))
  in
  let t_dqa =
    Test.make ~name:"dqa assign+release"
      (Staged.stage (fun () ->
           incr counter;
           let egress = !counter land 31 in
           let q = Bfc_core.Dqa.assign dqa ~egress ~fid_hash:!counter in
           Bfc_core.Dqa.mark_occupied dqa ~egress ~queue:q;
           Bfc_core.Dqa.mark_empty dqa ~egress ~queue:q))
  in
  let t_it =
    let tbl = Bfc_util.Int_table.create ~size:4096 () in
    for k = 0 to 2047 do
      Bfc_util.Int_table.set tbl (k * 7919) k
    done;
    Test.make ~name:"int_table find (2k entries)"
      (Staged.stage (fun () ->
           incr counter;
           match Bfc_util.Int_table.find_exn tbl (!counter land 2047 * 7919) with
           | exception Not_found -> ()
           | v -> ignore (Sys.opaque_identity v)))
  in
  let t_th =
    Test.make ~name:"threshold compute"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Bfc_core.Threshold.bytes ~hrtt:2000 ~gbps:100.0
                ~n_active:(1 + (!counter land 31))
                ~factor:1.0)))
  in
  [ t_ft; t_pc; t_dqa; t_it; t_th ]

let run_micro () =
  let open Bechamel in
  print_endline "\n################ microbenchmarks: BFC per-packet dataplane ops";
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance
        raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-36s %8.1f ns/op\n%!" name est
        | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
      results
  in
  List.iter (fun t -> benchmark (Bechamel.Test.make_grouped ~name:"bfc" [ t ])) (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Macro benchmark: end-to-end event throughput of the engine on a
   quick-profile clos run, A/B'd across the Heap and Wheel scheduler
   backends, plus the domain-pool sweep speedup. Results go to
   BENCH_engine.json so CI can archive them across commits. *)

let quick_setup seed =
  { (Exp_common.std Exp_common.Quick Scheme.bfc) with Exp_common.sp_seed = seed }

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let with_sched sched f =
  let saved = Sim.default_sched () in
  Sim.set_default_sched sched;
  Fun.protect ~finally:(fun () -> Sim.set_default_sched saved) f

let sched_name = function Sim.Heap -> "heap" | Sim.Wheel -> "wheel"

(* One timed run of the reference workload under [sched]; returns
   (json fragment, events, seconds, result). Minor-heap allocation is
   measured around the whole run ([Gc.quick_stat] deltas) and reported
   per executed event — the figure the typed closure-free dispatch is
   meant to drive toward zero on the steady-state path (setup and flow
   records keep it above zero). *)
let macro_leg sched =
  let g0 = Gc.quick_stat () in
  let r, secs = time_run (fun () -> with_sched sched (fun () -> Exp_common.run_std (quick_setup 1))) in
  let g1 = Gc.quick_stat () in
  let events = Runner.events_executed r.Exp_common.env in
  let eps = float_of_int events /. secs in
  let mwpe = (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int (max 1 events) in
  Printf.printf "  [%-5s] events %d, wall %.2f s, %.0f events/sec, %.1f minor words/event\n%!"
    (sched_name sched) events secs eps mwpe;
  let json =
    Printf.sprintf
      {|{ "events": %d, "seconds": %.3f, "events_per_sec": %.0f, "minor_words_per_event": %.2f }|}
      events secs eps mwpe
  in
  (json, events, secs, r)

let run_macro ~jobs () =
  Printf.printf "\n################ macro benchmark: event engine (jobs=%d)\n%!" jobs;
  (* 1. single-domain event throughput, heap vs wheel on the identical
     workload (same seed, same flow schedule) *)
  let heap_json, heap_events, heap_secs, _ = macro_leg Sim.Heap in
  let wheel_json, wheel_events, wheel_secs, r = macro_leg Sim.Wheel in
  if heap_events <> wheel_events then
    failwith
      (Printf.sprintf "macro A/B diverged: heap executed %d events, wheel %d" heap_events
         wheel_events);
  let wheel_speedup_pct = 100.0 *. ((heap_secs /. wheel_secs) -. 1.0) in
  Printf.printf "  wheel vs heap         %+.1f%% events/sec\n%!" wheel_speedup_pct;
  let pool = Runner.pool r.Exp_common.env in
  let allocated = Bfc_net.Packet.Pool.allocated pool in
  let recycled = Bfc_net.Packet.Pool.recycled pool in
  let recycle_ratio = float_of_int recycled /. float_of_int (max 1 (allocated + recycled)) in
  Printf.printf "  packets allocated     %d\n" allocated;
  Printf.printf "  packets recycled      %d (%.1f%% of acquires)\n%!" recycled
    (100.0 *. recycle_ratio);
  (* engine self-profile of the wheel run: event-class mix, queue
     pressure, handle reuse *)
  let prof = Sim.profile (Runner.sim r.Exp_common.env) in
  Printf.printf "  event classes         typed %d, one-shot %d, reusable %d, ticker %d\n"
    prof.Sim.p_typed prof.Sim.p_one_shot prof.Sim.p_reusable prof.Sim.p_ticker;
  Printf.printf "  queue high-water      %d (capacity %d)\n" prof.Sim.p_heap_hwm
    prof.Sim.p_heap_capacity;
  Printf.printf "  handle rearms         %d, cancels %d\n%!" prof.Sim.p_rearms prof.Sim.p_cancels;
  let profile_json = Bfc_sim.Telemetry.engine_profile_json r.Exp_common.env in
  (* 2. sweep speedup: the same independent tasks, 1 domain vs N. On a
     single-core container (or with jobs=1) the ratio measures scheduling
     overhead, not parallelism, so it is reported as null with a note. *)
  let cores = Pool.recommended_jobs () in
  let tasks = max 4 jobs in
  let thunks =
    List.init tasks (fun i -> fun () ->
        Runner.events_executed (Exp_common.run_std (quick_setup (i + 1))).Exp_common.env)
  in
  let seq_events, seq_secs = time_run (fun () -> Pool.run ~jobs:1 thunks) in
  let par_events, par_secs = time_run (fun () -> Pool.run ~jobs thunks) in
  assert (seq_events = par_events);
  let ratio = seq_secs /. par_secs in
  let speedup_json =
    if cores = 1 || jobs <= 1 then
      Printf.sprintf
        {|"speedup": null,
    "note": "not a parallelism measurement: %s (raw ratio %.2f)"|}
        (if cores = 1 then "single-core container" else "jobs=1")
        ratio
    else Printf.sprintf {|"speedup": %.2f|} ratio
  in
  Printf.printf "  sweep of %d tasks      jobs=1 %.2fs, jobs=%d %.2fs -> %.2fx%s\n%!" tasks
    seq_secs jobs par_secs ratio
    (if cores = 1 || jobs <= 1 then " (not meaningful here, recorded as null)" else "");
  (* Optional seed comparison: BFC_BENCH_BASELINE_S holds the wall seconds
     the pre-optimization engine needs for this exact workload (measured by
     building the seed revision and timing the same run_std call). *)
  let comparison =
    match Sys.getenv_opt "BFC_BENCH_BASELINE_S" with
    | None -> ""
    | Some s -> (
      match float_of_string_opt s with
      | None -> ""
      | Some baseline_s ->
        Printf.sprintf
          {|,
  "vs_seed": {
    "workload": "run_std quick bfc seed=1",
    "seed_seconds": %.3f,
    "seconds": %.3f,
    "improvement_pct": %.1f
  }|}
          baseline_s wheel_secs
          (100.0 *. ((baseline_s /. wheel_secs) -. 1.0)))
  in
  Printf.sprintf
    {|"engine": {
    "workload": "run_std quick bfc seed=1",
    "heap": %s,
    "wheel": %s,
    "wheel_speedup_pct": %.1f
  },
  "packet_pool": {
    "allocated": %d,
    "recycled": %d,
    "recycle_ratio": %.4f
  },
  "sweep": {
    "tasks": %d,
    "jobs": %d,
    "cores": %d,
    "shards": %d,
    "seq_seconds": %.3f,
    "par_seconds": %.3f,
    %s
  },
  "profile": %s%s|}
    heap_json wheel_json wheel_speedup_pct allocated recycled recycle_ratio tasks jobs cores
    (Pdes.default_shards ()) seq_secs par_secs speedup_json profile_json comparison

(* ------------------------------------------------------------------ *)
(* PDES benchmark: the same quick reference workload, sequential vs the
   2-shard conservative-window run. The sharded leg must produce the
   identical output (the tentpole's byte-identity property — asserted
   here on counters and FCT rows), so the only question is wall clock.
   Events/sec for both legs use the sequential event count: same
   delivered workload, throughput on a wall-clock basis. On a
   single-core container the ratio measures synchronization overhead,
   not parallelism, and is recorded as null with the raw ratio noted —
   same convention as the sweep block. *)

let run_pdes () =
  Printf.printf "\n################ pdes benchmark: sequential vs 2-shard\n%!";
  let cores = Pool.recommended_jobs () in
  let shards = 2 in
  let setup = quick_setup 1 in
  let rseq, seq_secs = time_run (fun () -> Exp_common.run_std_seq setup) in
  let events = Runner.events_executed rseq.Exp_common.env in
  let seq_eps = float_of_int events /. seq_secs in
  Printf.printf "  [seq  ] events %d, wall %.2f s, %.0f events/sec\n%!" events seq_secs seq_eps;
  let rsh, sh_secs = time_run (fun () -> Exp_common.run_std_sharded setup ~shards) in
  if
    Runner.injected rseq.Exp_common.env <> Runner.injected rsh.Exp_common.env
    || Runner.completed rseq.Exp_common.env <> Runner.completed rsh.Exp_common.env
    || Exp_common.fct_rows rseq <> Exp_common.fct_rows rsh
  then failwith "pdes bench diverged: sharded output differs from sequential";
  let sh_eps = float_of_int events /. sh_secs in
  let ratio = seq_secs /. sh_secs in
  Printf.printf "  [shard] shards=%d, wall %.2f s, %.0f events/sec\n%!" shards sh_secs sh_eps;
  Printf.printf "  sharded vs sequential %.2fx%s\n%!" ratio
    (if cores = 1 then " (single-core container: synchronization overhead only)" else "");
  let speedup_json =
    if cores = 1 then
      Printf.sprintf
        {|"speedup": null,
    "note": "not a parallelism measurement: single-core container (raw ratio %.2f)"|}
        ratio
    else Printf.sprintf {|"speedup": %.2f|} ratio
  in
  (* burst batching: cross-shard messages vs the ring slots (cursor
     publications) that carried them *)
  let sync_json =
    match !Exp_common.last_pdes_stats with
    | None -> ""
    | Some st ->
      let per_burst = float_of_int st.Exp_common.ps_messages /. float_of_int (max 1 st.Exp_common.ps_bursts) in
      Printf.printf "  cross-shard traffic   %d messages in %d bursts (%.1f msgs/slot), %d windows, %d stalls\n%!"
        st.Exp_common.ps_messages st.Exp_common.ps_bursts per_burst st.Exp_common.ps_windows
        st.Exp_common.ps_stalls;
      Printf.sprintf
        {|"messages": %d,
    "bursts": %d,
    "messages_per_burst": %.1f,
    "windows": %d,
    "stalls": %d,
    |}
        st.Exp_common.ps_messages st.Exp_common.ps_bursts per_burst st.Exp_common.ps_windows
        st.Exp_common.ps_stalls
  in
  Printf.sprintf
    {|"pdes": {
    "workload": "run_std quick bfc seed=1, sequential vs %d-shard PDES",
    "cores": %d,
    "shards": %d,
    "identical_output": true,
    "ratio": %.2f,
    "seq": { "events": %d, "seconds": %.3f, "events_per_sec": %.0f },
    "sharded": { "seconds": %.3f, "events_per_sec": %.0f },
    %s%s
  }|}
    shards cores shards ratio events seq_secs seq_eps sh_secs sh_eps sync_json speedup_json

(* ------------------------------------------------------------------ *)
(* IR benchmark: the same quick reference workload through the hand-written
   dataplane hooks vs the compiled pipeline IR (Runner.use_ir). The two
   runs must execute the identical event count — the IR lowering is
   byte-identical by construction — so the only question is throughput:
   what the op-array dispatch costs relative to the fused hand-written
   closures. CI gates on the ratio. *)

let run_ir () =
  Printf.printf "\n################ ir benchmark: hand-written vs compiled pipeline\n%!";
  let leg name use_ir =
    let setup =
      {
        (quick_setup 1) with
        Exp_common.sp_params = (fun p -> { p with Runner.use_ir });
      }
    in
    let r, secs = time_run (fun () -> Exp_common.run_std setup) in
    let events = Runner.events_executed r.Exp_common.env in
    let eps = float_of_int events /. secs in
    Printf.printf "  [%-5s] events %d, wall %.2f s, %.0f events/sec\n%!" name events secs eps;
    (events, secs, eps)
  in
  let hand_e, hand_s, hand_eps = leg "hand" false in
  let ir_e, ir_s, ir_eps = leg "ir" true in
  if hand_e <> ir_e then
    failwith
      (Printf.sprintf "ir differential diverged: hand executed %d events, ir %d" hand_e ir_e);
  let ratio = ir_eps /. hand_eps in
  Printf.printf "  ir vs hand            %.2fx events/sec\n%!" ratio;
  Printf.sprintf
    {|"ir": {
    "workload": "run_std quick bfc seed=1, hand hooks vs compiled pipeline IR",
    "hand": { "events": %d, "seconds": %.3f, "events_per_sec": %.0f },
    "ir": { "events": %d, "seconds": %.3f, "events_per_sec": %.0f },
    "ratio": %.3f
  }|}
    hand_e hand_s hand_eps ir_e ir_s ir_eps ratio

(* ------------------------------------------------------------------ *)
(* Stress benchmark: the same quick reference workload, clean vs with the
   fault injector, a flap-storm scenario and the stress detectors all
   attached — what the adversity machinery costs in engine throughput. *)

let run_stress () =
  Printf.printf "\n################ stress benchmark: fault load vs clean\n%!";
  let module Injector = Bfc_fault.Injector in
  let module Detect = Bfc_stress.Detect in
  let module Scenario = Bfc_stress.Scenario in
  let leg name setup =
    let r, secs = time_run (fun () -> Exp_common.run_std setup) in
    let events = Runner.events_executed r.Exp_common.env in
    let eps = float_of_int events /. secs in
    Printf.printf "  [%-5s] events %d, wall %.2f s, %.0f events/sec\n%!" name events secs eps;
    (events, secs, eps)
  in
  let clean_e, clean_s, clean_eps = leg "clean" (quick_setup 1) in
  let fault_e, fault_s, fault_eps =
    leg "fault"
      {
        (quick_setup 1) with
        Exp_common.sp_obs =
          (fun env ->
            let inj = Injector.attach env in
            ignore (Detect.attach env);
            ignore (Scenario.apply (Scenario.flap_storm ()) ~env ~inj ()));
      }
  in
  let overhead_pct = 100.0 *. ((clean_eps /. fault_eps) -. 1.0) in
  Printf.printf "  fault-load overhead   %+.1f%% events/sec\n%!" overhead_pct;
  Printf.sprintf
    {|"stress": {
    "workload": "run_std quick bfc seed=1 vs same + flap-storm + injector + detectors",
    "clean": { "events": %d, "seconds": %.3f, "events_per_sec": %.0f },
    "fault": { "events": %d, "seconds": %.3f, "events_per_sec": %.0f },
    "overhead_pct": %.1f
  }|}
    clean_e clean_s clean_eps fault_e fault_s fault_eps overhead_pct

(* ------------------------------------------------------------------ *)
(* Streaming-observability benchmark (two questions, two sub-blocks):

   - accuracy: one reference run with streaming on retains BOTH the exact
     per-flow samples and the sketches, so the sketch-backed FCT table can
     be compared percentile-by-percentile against the exact table from
     the very same flows. CI gates max_rel_err against the sketches'
     configured alpha.

   - mem_scale: the run_stream driver at N/4 and N flows with streaming
     observability (sketches + reclaimed transport state), plus an exact
     leg (every flow record retained) at a smaller count as the memory
     baseline. The gate is sublinearity: quadrupling the flow count must
     not quadruple peak heap. flows_per_gb = completed / peak-heap-GB. *)

let run_streaming () =
  Printf.printf "\n################ streaming benchmark: sketch accuracy + memory scaling\n%!";
  let module Metrics = Bfc_sim.Metrics in
  (* 1. accuracy: exact vs sketch on the same quick reference run *)
  Exp_common.set_streaming true;
  let r = Exp_common.run_std (quick_setup 1) in
  Exp_common.set_streaming false;
  let sk = match r.Exp_common.sketches with Some sk -> sk | None -> assert false in
  let exact_rows =
    Metrics.fct_table r.Exp_common.env ~since:r.Exp_common.measure_from r.Exp_common.flows
  in
  let sketch_rows = Metrics.fct_table_of_sketches sk in
  let exact_all = Metrics.fct_overall r.Exp_common.env r.Exp_common.flows in
  let sketch_all = Metrics.fct_overall_of_sketches sk in
  let max_err = ref 0.0 and n_cmp = ref 0 in
  let cmp exact approx =
    if exact > 0.0 && Float.is_finite exact then begin
      let e = Float.abs (approx -. exact) /. exact in
      incr n_cmp;
      if e > !max_err then max_err := e
    end
  in
  List.iter2
    (fun (e : Metrics.fct_stats) (s : Metrics.fct_stats) ->
      if e.Metrics.count <> s.Metrics.count then
        failwith
          (Printf.sprintf "streaming bench: bucket %s count mismatch (exact %d, sketch %d)"
             e.Metrics.bucket e.Metrics.count s.Metrics.count);
      cmp e.Metrics.p50 s.Metrics.p50;
      cmp e.Metrics.p95 s.Metrics.p95;
      cmp e.Metrics.p99 s.Metrics.p99)
    (exact_all :: exact_rows) (sketch_all :: sketch_rows);
  let alpha = Metrics.sketches_alpha sk in
  Printf.printf "  accuracy: %d percentiles compared, max rel err %.4f (alpha %.3f)\n%!" !n_cmp
    !max_err alpha;
  Printf.printf "  overall p99: exact %.3f, sketch %.3f\n%!" exact_all.Metrics.p99
    sketch_all.Metrics.p99;
  (* 2. memory scaling: run_stream at N/4 and N, exact baseline leg *)
  let n_flows =
    match Option.bind (Sys.getenv_opt "BFC_STREAM_FLOWS") int_of_string_opt with
    | Some n when n >= 4 -> n
    | _ -> 2_000_000
  in
  let stream_leg name ~streaming ~flows =
    Gc.compact ();
    let s = Exp_common.run_stream ~streaming ~flows () in
    let peak_gb = float_of_int s.Exp_common.sr_peak_heap_words *. 8.0 /. 1e9 in
    let fpg = float_of_int s.Exp_common.sr_completed /. peak_gb in
    let eps = float_of_int s.Exp_common.sr_events /. s.Exp_common.sr_elapsed_s in
    Printf.printf
      "  [%-9s] flows %d/%d, events %d, wall %.2f s, %.0f events/sec, peak heap %.1f MB, %.0f \
       flows/GB\n\
       %!"
      name s.Exp_common.sr_completed s.Exp_common.sr_injected s.Exp_common.sr_events
      s.Exp_common.sr_elapsed_s eps (peak_gb *. 1e3) fpg;
    let json =
      Printf.sprintf
        {|{ "flows": %d, "events": %d, "seconds": %.3f, "events_per_sec": %.0f, "peak_heap_words": %d, "flows_per_gb": %.0f }|}
        s.Exp_common.sr_completed s.Exp_common.sr_events s.Exp_common.sr_elapsed_s eps
        s.Exp_common.sr_peak_heap_words fpg
    in
    (json, s.Exp_common.sr_peak_heap_words, fpg)
  in
  let exact_json, _, exact_fpg =
    stream_leg "exact" ~streaming:false ~flows:(min n_flows 200_000)
  in
  let quarter_json, quarter_peak, _ = stream_leg "stream/4" ~streaming:true ~flows:(n_flows / 4) in
  let full_json, full_peak, full_fpg = stream_leg "streaming" ~streaming:true ~flows:n_flows in
  let growth = float_of_int full_peak /. float_of_int (max 1 quarter_peak) in
  let sublinear = growth < 4.0 in
  let gain = full_fpg /. exact_fpg in
  Printf.printf "  heap growth 4x flows  %.2fx (%s), flows/GB gain vs exact %.1fx\n%!" growth
    (if sublinear then "sublinear" else "NOT sublinear") gain;
  Printf.sprintf
    {|"streaming": {
    "alpha": %.4f,
    "accuracy": {
      "workload": "run_std quick bfc seed=1, sketch vs exact on the same flows",
      "percentiles_compared": %d,
      "max_rel_err": %.5f,
      "overall_p99_exact": %.4f,
      "overall_p99_sketch": %.4f
    },
    "mem_scale": {
      "workload": "run_stream quick clos, single-MTU flows, sliding-window arrivals",
      "exact": %s,
      "streaming_quarter": %s,
      "streaming": %s,
      "heap_growth_ratio_4x_flows": %.3f,
      "sublinear": %b,
      "flows_per_gb_gain": %.2f
    }
  }|}
    alpha !n_cmp !max_err exact_all.Metrics.p99 sketch_all.Metrics.p99 exact_json quarter_json
    full_json growth sublinear gain

(* ------------------------------------------------------------------ *)
(* Scheduler microbenchmark: raw Heap vs Wheel throughput, isolated from
   the rest of the engine. Two steady states per pending-set size:
     - push/pop: fill with n deadlines, then drain, repeatedly;
     - rearm: hold n pending and do pop-one/push-one at a short random
       horizon past the popped deadline — the engine's actual hot loop
       (port wakeups, in-flight deliveries). *)

let sched_sizes = [ 1_000; 32_000; 256_000 ]

(* deterministic xorshift; spread/horizon land mostly in wheel level 0/1,
   matching the engine's ns-scale event horizons *)
let mk_rand () =
  let s = ref 0x2545F491 in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x;
    x land 0x3FFF

(* The per-backend primitive set, monomorphized by hand: both queues
   store the deadline as the payload so pop returns the popped time. *)
type qops = {
  q_push : priority:int -> int -> unit;
  q_pop : unit -> int;
  q_clear : unit -> unit;
}

let heap_ops () =
  let h : int Bfc_util.Heap.t = Bfc_util.Heap.create () in
  {
    q_push = (fun ~priority v -> Bfc_util.Heap.push h ~priority v);
    q_pop = (fun () -> Bfc_util.Heap.pop_min_exn h);
    q_clear = (fun () -> Bfc_util.Heap.clear h);
  }

let wheel_ops () =
  let w : int Bfc_util.Wheel.t = Bfc_util.Wheel.create () in
  {
    q_push = (fun ~priority v -> Bfc_util.Wheel.push w ~priority v);
    q_pop = (fun () -> Bfc_util.Wheel.pop_min_exn w);
    q_clear = (fun () -> Bfc_util.Wheel.clear w);
  }

let sched_leg mk n =
  (* push/pop: fill-and-drain rounds, >= 2M single ops total *)
  let rounds = max 1 (2_000_000 / (2 * n)) in
  let pp_mops =
    let q = mk () in
    let rand = mk_rand () in
    let sink = ref 0 in
    let _, secs =
      time_run (fun () ->
          for _ = 1 to rounds do
            for _ = 1 to n do
              let t = rand () in
              q.q_push ~priority:t t
            done;
            for _ = 1 to n do
              sink := !sink + q.q_pop ()
            done;
            q.q_clear ()
          done;
          ignore (Sys.opaque_identity !sink))
    in
    float_of_int (rounds * 2 * n) /. secs /. 1e6
  in
  (* rearm: hold n pending, pop-one/push-one 2M times *)
  let iters = 2_000_000 in
  let rearm_mops =
    let q = mk () in
    let rand = mk_rand () in
    for _ = 1 to n do
      let t = rand () in
      q.q_push ~priority:t t
    done;
    let sink = ref 0 in
    let _, secs =
      time_run (fun () ->
          for _ = 1 to iters do
            let t = q.q_pop () in
            sink := !sink + t;
            q.q_push ~priority:(t + 1 + rand ()) t
          done;
          ignore (Sys.opaque_identity !sink))
    in
    float_of_int (2 * iters) /. secs /. 1e6
  in
  (pp_mops, rearm_mops)

let run_sched () =
  print_endline "\n################ scheduler microbenchmark: Heap vs Wheel";
  let legs =
    List.map
      (fun n ->
        let hp, hr = sched_leg heap_ops n in
        let wp, wr = sched_leg wheel_ops n in
        Printf.printf
          "  pending %7d   push/pop  heap %6.1f  wheel %6.1f Mops   rearm  heap %6.1f  wheel \
           %6.1f Mops\n\
           %!"
          n hp wp hr wr;
        Printf.sprintf
          {|{ "pending": %d,
      "heap": { "push_pop_mops": %.1f, "rearm_mops": %.1f },
      "wheel": { "push_pop_mops": %.1f, "rearm_mops": %.1f } }|}
          n hp hr wp wr)
      sched_sizes
  in
  Printf.sprintf {|"sched": [
    %s
  ]|} (String.concat ",\n    " legs)

let write_bench ~out blocks =
  let oc = open_out out in
  Printf.fprintf oc {|{
  "cores": %d,
  %s
}
|} (Pool.recommended_jobs ())
    (String.concat ",\n  " blocks);
  close_out oc;
  Printf.printf "  wrote %s\n%!" out

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let profile = ref Exp_common.Quick in
  let targets = ref [] in
  let micro_only = ref false in
  let macro = ref false in
  let sched = ref false in
  let stress = ref false in
  let ir = ref false in
  let pdes = ref false in
  let streaming = ref false in
  let csv_dir = ref None in
  let jobs = ref (Pool.recommended_jobs ()) in
  let bench_out = ref "BENCH_engine.json" in
  let rec parse = function
    | [] -> ()
    | "--profile" :: p :: rest ->
      profile := Exp_common.profile_of_string p;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse rest
    | "--micro" :: rest ->
      micro_only := true;
      parse rest
    | "--macro" :: rest ->
      macro := true;
      parse rest
    | "--sched" :: rest ->
      sched := true;
      parse rest
    | "--stress" :: rest ->
      stress := true;
      parse rest
    | "--ir" :: rest ->
      ir := true;
      parse rest
    | "--pdes" :: rest ->
      pdes := true;
      parse rest
    | "--streaming" :: rest ->
      streaming := true;
      parse rest
    | "--engine-profile" :: _ ->
      (* one quick run, engine self-profile JSON on stdout (--profile is
         taken by the scale selector, hence the distinct flag name) *)
      let r = Exp_common.run_std (quick_setup 1) in
      print_endline (Bfc_sim.Telemetry.engine_profile_json r.Exp_common.env);
      exit 0
    | "--bench-out" :: path :: rest ->
      bench_out := path;
      parse rest
    | "--list" :: _ ->
      List.iter print_endline (Experiments.names ());
      exit 0
    | name :: rest ->
      targets := name :: !targets;
      parse rest
  in
  parse args;
  if !macro || !sched || !stress || !ir || !pdes || !streaming then begin
    let blocks =
      (if !macro then [ run_macro ~jobs:!jobs () ] else [])
      @ (if !sched then [ run_sched () ] else [])
      @ (if !stress then [ run_stress () ] else [])
      @ (if !ir then [ run_ir () ] else [])
      @ (if !pdes then [ run_pdes () ] else [])
      @ if !streaming then [ run_streaming () ] else []
    in
    write_bench ~out:!bench_out blocks
  end
  else if !micro_only then run_micro ()
  else begin
    let chosen =
      match List.rev !targets with
      | [] -> Experiments.all
      | names ->
        List.map
          (fun n ->
            match Experiments.find n with
            | Some t -> t
            | None ->
              Printf.eprintf "unknown target %s (use --list)\n" n;
              exit 1)
          names
    in
    let t0 = Unix.gettimeofday () in
    List.iter (Experiments.run_parallel ?csv_dir:!csv_dir ~jobs:!jobs !profile) chosen;
    if List.length chosen > 1 then run_micro ();
    Printf.printf "\nall done in %.1fs (jobs=%d)\n" (Unix.gettimeofday () -. t0) !jobs
  end
