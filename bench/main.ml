(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index) and runs Bechamel microbenchmarks
   of BFC's per-packet dataplane operations.

   Usage:
     dune exec bench/main.exe                 -- all targets, quick profile
     dune exec bench/main.exe -- fig9 fig13   -- selected targets
     dune exec bench/main.exe -- --profile paper fig11
     dune exec bench/main.exe -- --jobs 8 fig12   -- sweeps on 8 domains
     dune exec bench/main.exe -- --micro      -- only the microbenchmarks
     dune exec bench/main.exe -- --macro      -- engine macro benchmark
                                                 (writes BENCH_engine.json)
     dune exec bench/main.exe -- --engine-profile
                                              -- one quick run, engine
                                                 self-profile JSON on stdout *)

module Experiments = Bfc_sim.Experiments
module Exp_common = Bfc_sim.Exp_common
module Pool = Bfc_sim.Pool
module Runner = Bfc_sim.Runner
module Scheme = Bfc_sim.Scheme

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the constant-time per-packet operations the
   paper argues fit a switch pipeline (§3.3). *)

let micro_tests () =
  let open Bechamel in
  let ft = Bfc_core.Flow_table.create ~egresses:32 ~queues_per_port:32 ~mult:100 in
  let pc = Bfc_core.Pause_counter.create ~ingresses:32 ~max_upstream_q:128 in
  let rng = Bfc_util.Rng.create 99 in
  let dqa = Bfc_core.Dqa.create ~egresses:32 ~queues:31 ~policy:Bfc_core.Dqa.Dynamic ~rng in
  let counter = ref 0 in
  let t_ft =
    Test.make ~name:"flow_table lookup+update"
      (Staged.stage (fun () ->
           incr counter;
           let e = Bfc_core.Flow_table.entry ft ~egress:(!counter land 31) ~fid_hash:!counter in
           e.Bfc_core.Flow_table.size <- e.Bfc_core.Flow_table.size + 1;
           e.Bfc_core.Flow_table.size <- e.Bfc_core.Flow_table.size - 1))
  in
  let t_pc =
    Test.make ~name:"pause_counter incr+decr"
      (Staged.stage (fun () ->
           incr counter;
           let ingress = !counter land 31 and upstream_q = !counter land 127 in
           ignore (Bfc_core.Pause_counter.incr pc ~ingress ~upstream_q);
           ignore (Bfc_core.Pause_counter.decr pc ~ingress ~upstream_q)))
  in
  let t_dqa =
    Test.make ~name:"dqa assign+release"
      (Staged.stage (fun () ->
           incr counter;
           let egress = !counter land 31 in
           let q = Bfc_core.Dqa.assign dqa ~egress ~fid_hash:!counter in
           Bfc_core.Dqa.mark_occupied dqa ~egress ~queue:q;
           Bfc_core.Dqa.mark_empty dqa ~egress ~queue:q))
  in
  let t_th =
    Test.make ~name:"threshold compute"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Bfc_core.Threshold.bytes ~hrtt:2000 ~gbps:100.0
                ~n_active:(1 + (!counter land 31))
                ~factor:1.0)))
  in
  [ t_ft; t_pc; t_dqa; t_th ]

let run_micro () =
  let open Bechamel in
  print_endline "\n################ microbenchmarks: BFC per-packet dataplane ops";
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance
        raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-36s %8.1f ns/op\n%!" name est
        | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
      results
  in
  List.iter (fun t -> benchmark (Bechamel.Test.make_grouped ~name:"bfc" [ t ])) (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Macro benchmark: end-to-end event throughput of the engine on a
   quick-profile clos run, plus the domain-pool sweep speedup. Results go
   to BENCH_engine.json so CI can archive them across commits. *)

let quick_setup seed =
  { (Exp_common.std Exp_common.Quick Scheme.bfc) with Exp_common.sp_seed = seed }

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_macro ~jobs ~out () =
  Printf.printf "\n################ macro benchmark: event engine (jobs=%d)\n%!" jobs;
  (* 1. single-domain event throughput (the zero-allocation hot path) *)
  let r, secs = time_run (fun () -> Exp_common.run_std (quick_setup 1)) in
  let events = Runner.events_executed r.Exp_common.env in
  let eps = float_of_int events /. secs in
  let pool = Runner.pool r.Exp_common.env in
  let allocated = Bfc_net.Packet.Pool.allocated pool in
  let recycled = Bfc_net.Packet.Pool.recycled pool in
  let recycle_ratio =
    float_of_int recycled /. float_of_int (max 1 (allocated + recycled))
  in
  Printf.printf "  events executed       %d\n" events;
  Printf.printf "  wall time             %.2f s\n" secs;
  Printf.printf "  events/sec            %.0f\n" eps;
  Printf.printf "  packets allocated     %d\n" allocated;
  Printf.printf "  packets recycled      %d (%.1f%% of acquires)\n%!" recycled
    (100.0 *. recycle_ratio);
  (* engine self-profile of the same run: event-class mix, heap pressure,
     handle reuse *)
  let prof = Bfc_engine.Sim.profile (Runner.sim r.Exp_common.env) in
  Printf.printf "  event classes         one-shot %d, reusable %d, ticker %d\n"
    prof.Bfc_engine.Sim.p_one_shot prof.Bfc_engine.Sim.p_reusable prof.Bfc_engine.Sim.p_ticker;
  Printf.printf "  heap high-water       %d (capacity %d)\n" prof.Bfc_engine.Sim.p_heap_hwm
    prof.Bfc_engine.Sim.p_heap_capacity;
  Printf.printf "  handle rearms         %d, cancels %d\n%!" prof.Bfc_engine.Sim.p_rearms
    prof.Bfc_engine.Sim.p_cancels;
  let profile_json = Bfc_sim.Telemetry.engine_profile_json r.Exp_common.env in
  (* 2. sweep speedup: the same independent tasks, 1 domain vs N *)
  let tasks = max 4 jobs in
  let thunks =
    List.init tasks (fun i -> fun () ->
        Runner.events_executed (Exp_common.run_std (quick_setup (i + 1))).Exp_common.env)
  in
  let seq_events, seq_secs = time_run (fun () -> Pool.run ~jobs:1 thunks) in
  let par_events, par_secs = time_run (fun () -> Pool.run ~jobs thunks) in
  assert (seq_events = par_events);
  let speedup = seq_secs /. par_secs in
  Printf.printf "  sweep of %d tasks      jobs=1 %.2fs, jobs=%d %.2fs -> %.2fx speedup\n%!"
    tasks seq_secs jobs par_secs speedup;
  (* Optional seed comparison: BFC_BENCH_BASELINE_S holds the wall seconds
     the pre-optimization engine needs for this exact workload (measured by
     building the seed revision and timing the same run_std call). *)
  let comparison =
    match Sys.getenv_opt "BFC_BENCH_BASELINE_S" with
    | None -> ""
    | Some s -> (
      match float_of_string_opt s with
      | None -> ""
      | Some baseline_s ->
        Printf.sprintf
          {|,
  "vs_seed": {
    "workload": "run_std quick bfc seed=1",
    "seed_seconds": %.3f,
    "seconds": %.3f,
    "improvement_pct": %.1f
  }|}
          baseline_s secs
          (100.0 *. ((baseline_s /. secs) -. 1.0)))
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "cores": %d,
  "engine": {
    "events": %d,
    "seconds": %.3f,
    "events_per_sec": %.0f
  },
  "packet_pool": {
    "allocated": %d,
    "recycled": %d,
    "recycle_ratio": %.4f
  },
  "sweep": {
    "tasks": %d,
    "jobs": %d,
    "seq_seconds": %.3f,
    "par_seconds": %.3f,
    "speedup": %.2f
  },
  "profile": %s%s
}
|}
    (Pool.recommended_jobs ()) events secs eps allocated recycled recycle_ratio tasks jobs
    seq_secs par_secs speedup profile_json comparison;
  close_out oc;
  Printf.printf "  wrote %s\n%!" out

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let profile = ref Exp_common.Quick in
  let targets = ref [] in
  let micro_only = ref false in
  let macro_only = ref false in
  let csv_dir = ref None in
  let jobs = ref (Pool.recommended_jobs ()) in
  let bench_out = ref "BENCH_engine.json" in
  let rec parse = function
    | [] -> ()
    | "--profile" :: p :: rest ->
      profile := Exp_common.profile_of_string p;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse rest
    | "--micro" :: rest ->
      micro_only := true;
      parse rest
    | "--macro" :: rest ->
      macro_only := true;
      parse rest
    | "--engine-profile" :: _ ->
      (* one quick run, engine self-profile JSON on stdout (--profile is
         taken by the scale selector, hence the distinct flag name) *)
      let r = Exp_common.run_std (quick_setup 1) in
      print_endline (Bfc_sim.Telemetry.engine_profile_json r.Exp_common.env);
      exit 0
    | "--bench-out" :: path :: rest ->
      bench_out := path;
      parse rest
    | "--list" :: _ ->
      List.iter print_endline (Experiments.names ());
      exit 0
    | name :: rest ->
      targets := name :: !targets;
      parse rest
  in
  parse args;
  if !micro_only then run_micro ()
  else if !macro_only then run_macro ~jobs:!jobs ~out:!bench_out ()
  else begin
    let chosen =
      match List.rev !targets with
      | [] -> Experiments.all
      | names ->
        List.map
          (fun n ->
            match Experiments.find n with
            | Some t -> t
            | None ->
              Printf.eprintf "unknown target %s (use --list)\n" n;
              exit 1)
          names
    in
    let t0 = Unix.gettimeofday () in
    List.iter (Experiments.run_parallel ?csv_dir:!csv_dir ~jobs:!jobs !profile) chosen;
    if List.length chosen > 1 then run_micro ();
    Printf.printf "\nall done in %.1fs (jobs=%d)\n" (Unix.gettimeofday () -. t0) !jobs
  end
