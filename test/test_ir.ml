(* Pipeline IR: validator rules, golden infeasible fixtures, and the
   differential gate holding the compiled IR byte-identical to the
   hand-written dataplanes. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Packet = Bfc_net.Packet
module Dataplane = Bfc_core.Dataplane
module Ir = Bfc_ir.Ir
module Validate = Bfc_ir.Validate
module Bfc_pipeline = Bfc_ir.Bfc_pipeline
module Compile = Bfc_ir.Compile
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Exp_common = Bfc_sim.Exp_common

let fixture_dir =
  if Sys.file_exists "fixtures/ir" then "fixtures/ir" else "test/fixtures/ir"

(* ------------------------------------------------------------------ *)
(* Validator *)

let test_builtins_valid () =
  List.iter
    (fun (name, p) ->
      match Validate.check p with
      | [] -> ()
      | d :: _ -> Alcotest.failf "builtin %s not clean: %s" name (Validate.to_human d))
    (Bfc_pipeline.builtins ())

let render_diags p =
  String.concat "" (List.map (fun d -> Validate.to_human d ^ "\n") (Validate.check p))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_fixtures () =
  List.iter
    (fun (name, p) ->
      let path = Filename.concat fixture_dir (name ^ ".expected") in
      let expected = read_file path in
      Alcotest.(check string) name expected (render_diags p))
    (Bfc_pipeline.infeasible ())

let test_every_fixture_rejected () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " produces a diagnostic") true (Validate.check p <> []))
    (Bfc_pipeline.infeasible ())

let test_diag_format () =
  (* bfc-lint's exact file:line:col shape, so CI greps treat both alike *)
  let _, p = List.hd (Bfc_pipeline.infeasible ()) in
  match Validate.check p with
  | d :: _ ->
    let line = Validate.to_human d in
    Alcotest.(check bool)
      "has file:line:col prefix" true
      (String.length line > 0
      && String.contains line ':'
      && String.contains line '['
      && String.contains line ']')
  | [] -> Alcotest.fail "fixture produced no diagnostics"

let test_dump_and_report () =
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "dump nonempty" true (String.length (Ir.dump p) > 0);
      Alcotest.(check bool) "report nonempty" true (String.length (Validate.report p) > 0))
    (Bfc_pipeline.builtins ())

let test_validator_catches_forward_dep () =
  let stage name hook deps =
    {
      Ir.s_name = name;
      s_hook = hook;
      s_tables = [];
      s_registers = [];
      s_actions = [ Ir.Flow_lookup ];
      s_deps = deps;
      s_recirc = false;
    }
  in
  let meta =
    {
      Ir.m_name = "forward-dep";
      m_ports = 2;
      m_queues_per_port = 4;
      m_classes = 1;
      m_max_upstream_q = 8;
      m_table_mult = 4;
      m_seed = 1;
      m_bitmap_period = None;
    }
  in
  (* ingress stage depending on egress-owned state: needs a packet loop *)
  let p =
    {
      Ir.p_meta = meta;
      p_budget = Ir.tofino2_budget;
      p_stages = [ stage "ingress" Ir.H_classify [ "egress" ]; stage "egress" Ir.H_dequeue [] ];
    }
  in
  Alcotest.(check bool) "forward cross-pass dep rejected" true
    (List.exists (fun d -> d.Validate.code = "DF003") (Validate.errors (Validate.check p)));
  (* same thing with recirculation declared on the egress side is fine *)
  let ok =
    {
      Ir.p_meta = meta;
      p_budget = Ir.tofino2_budget;
      p_stages =
        [
          stage "ingress" Ir.H_classify [];
          { (stage "egress" Ir.H_dequeue [ "ingress" ]) with Ir.s_recirc = true };
        ];
    }
  in
  Alcotest.(check bool) "recirc backward dep accepted" true (Validate.errors (Validate.check ok) = [])

(* ------------------------------------------------------------------ *)
(* Compiler rejection *)

let mk_star ~hosts =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let sw = Topology.Builder.add_switch b ~name:"sw" in
  let hs = Array.init hosts (fun i -> Topology.Builder.add_host b ~name:(Printf.sprintf "h%d" i)) in
  Array.iter (fun h -> Topology.Builder.link b h sw ~gbps:100.0 ~prop:(Time.us 1.0)) hs;
  let t = Topology.Builder.finish b in
  (sim, t, sw)

let mk_switch ~queues_per_port =
  let sim, t, sw_id = mk_star ~hosts:4 in
  let cfg = { Switch.default_config with Switch.queues_per_port } in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  (sim, Switch.create ~sim ~node:(Topology.node t sw_id) ~ports:(Topology.ports t sw_id) ~config:cfg ~route ())

let test_compile_rejects_infeasible () =
  let _sim, sw = mk_switch ~queues_per_port:8 in
  List.iter
    (fun (name, p) ->
      match Compile.attach p sw with
      | _ -> Alcotest.failf "%s compiled despite being infeasible" name
      | exception Compile.Infeasible _ -> ())
    (Bfc_pipeline.infeasible ())

let test_compile_attaches_valid () =
  let _sim, sw = mk_switch ~queues_per_port:8 in
  let prog =
    Compile.attach_bfc sw { Dataplane.default_config with Dataplane.max_upstream_q = 16 }
  in
  Alcotest.(check bool) "switch recorded" true (Compile.switch prog == sw);
  let p = Compile.pipeline prog in
  Alcotest.(check int) "pipeline sized for switch" (Switch.n_ports sw) p.Ir.p_meta.Ir.m_ports;
  Alcotest.(check int) "no pauses yet" 0 (Compile.stats prog).Dataplane.pauses_sent

let test_compile_checks_dims () =
  let _sim, sw = mk_switch ~queues_per_port:8 in
  (* a valid pipeline built for different dimensions must be refused *)
  let p = Bfc_pipeline.bfc ~ports:2 ~queues_per_port:8 ~classes:1 Dataplane.default_config in
  match Compile.attach p sw with
  | _ -> Alcotest.fail "dimension mismatch accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Differential: IR-compiled vs hand-written dataplanes, byte-identical *)

let smoke scheme ~incast ~use_ir =
  let s = Exp_common.std Exp_common.Smoke scheme in
  let s =
    {
      s with
      Exp_common.sp_incast = (if incast then Some Exp_common.default_incast else None);
      sp_params = (fun p -> { p with Runner.use_ir });
    }
  in
  Exp_common.run_std s

let sum_stats (sts : Dataplane.stats list) =
  List.fold_left
    (fun (a, b, c, d, e, f) (st : Dataplane.stats) ->
      ( a + st.Dataplane.pauses_sent,
        b + st.Dataplane.resumes_sent,
        c + st.Dataplane.packets_counted,
        d + st.Dataplane.queue_collisions,
        e + st.Dataplane.assignments,
        f + st.Dataplane.random_assignments ))
    (0, 0, 0, 0, 0, 0) sts

let check_differential name scheme ~incast ~check_stats =
  let hand = smoke scheme ~incast ~use_ir:false in
  let ir = smoke scheme ~incast ~use_ir:true in
  Alcotest.(check bool)
    (name ^ ": hand path uses hand dataplanes")
    true
    (Array.length (Runner.ir_programs hand.Exp_common.env) = 0);
  Alcotest.(check bool)
    (name ^ ": ir path uses compiled programs")
    true
    (Array.length (Runner.ir_programs ir.Exp_common.env) > 0
    && Array.length (Runner.dataplanes ir.Exp_common.env) = 0);
  Alcotest.(check int)
    (name ^ ": injected") (Runner.injected hand.Exp_common.env)
    (Runner.injected ir.Exp_common.env);
  Alcotest.(check int)
    (name ^ ": completed") (Runner.completed hand.Exp_common.env)
    (Runner.completed ir.Exp_common.env);
  Alcotest.(check (list (list string)))
    (name ^ ": fct rows byte-identical") (Exp_common.fct_rows hand) (Exp_common.fct_rows ir);
  Alcotest.(check (float 0.0))
    (name ^ ": buffer p99") (Exp_common.buffer_p99 hand) (Exp_common.buffer_p99 ir);
  if check_stats then begin
    let hand_st =
      sum_stats (Array.to_list (Array.map Dataplane.stats (Runner.dataplanes hand.Exp_common.env)))
    in
    let ir_st =
      sum_stats (Array.to_list (Array.map Compile.stats (Runner.ir_programs ir.Exp_common.env)))
    in
    Alcotest.(check (list int))
      (name ^ ": aggregated dataplane stats")
      (let a, b, c, d, e, f = hand_st in
       [ a; b; c; d; e; f ])
      (let a, b, c, d, e, f = ir_st in
       [ a; b; c; d; e; f ])
  end

let test_differential_bfc () = check_differential "bfc" Scheme.bfc ~incast:false ~check_stats:true

let test_differential_bfc_sampled_incast () =
  check_differential "bfc-sampled-incast"
    (Scheme.Bfc
       { Scheme.bfc_default with Scheme.sampling = 0.25; Scheme.incast_label = true })
    ~incast:true ~check_stats:true

let test_differential_credit () =
  check_differential "credit" Scheme.bfc_credit ~incast:false ~check_stats:false

let suite =
  [
    Alcotest.test_case "builtin pipelines validate clean" `Quick test_builtins_valid;
    Alcotest.test_case "golden infeasible fixtures" `Quick test_golden_fixtures;
    Alcotest.test_case "every fixture rejected" `Quick test_every_fixture_rejected;
    Alcotest.test_case "diagnostic format" `Quick test_diag_format;
    Alcotest.test_case "dump and report render" `Quick test_dump_and_report;
    Alcotest.test_case "forward/recirc dependency rules" `Quick test_validator_catches_forward_dep;
    Alcotest.test_case "compile rejects infeasible" `Quick test_compile_rejects_infeasible;
    Alcotest.test_case "compile attaches valid pipeline" `Quick test_compile_attaches_valid;
    Alcotest.test_case "compile checks dimensions" `Quick test_compile_checks_dims;
    Alcotest.test_case "differential: bfc" `Slow test_differential_bfc;
    Alcotest.test_case "differential: bfc sampled+incast" `Slow test_differential_bfc_sampled_incast;
    Alcotest.test_case "differential: credit" `Slow test_differential_credit;
  ]
