(* Fixture: DT004 det-hashtbl-order must fire — unsorted fold result. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
