(* Fixture: DT003 suppressed. *)
(* bfc-lint: allow det-unix *)
let make_dir path = Unix.mkdir path 0o755
