(* Fixture: PF001 pf-closure-timer must fire — arming a timer with a
   closure literal allocates on every arm. *)
let arm_watchdog sim timeout =
  ignore (Sim.after sim timeout (fun () -> ignore sim))
