(* Fixture: DT001 det-random must fire — ambient Random in lib code. *)
let jitter () = Random.int 100
