(* Fixture: RB001 suppressed. *)
(* bfc-lint: allow rob-catchall *)
let safe_div a b = try a / b with _ -> 0
