(* Fixture: DF003 suppressed. *)
(* bfc-lint: allow df-rec *)
let rec walk n = if n = 0 then 0 else walk (n - 1)
