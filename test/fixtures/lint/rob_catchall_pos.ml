(* Fixture: RB001 rob-catchall must fire — swallow-everything handler. *)
let safe_div a b = try a / b with _ -> 0
