(* Fixture: DT003 det-unix must fire — ambient Unix call in lib code. *)
let make_dir path = Unix.mkdir path 0o755
