(* Fixture: DF002 suppressed. *)
let drain q =
  (* bounded by queue depth in practice; bfc-lint: allow df-while *)
  while not (Queue.is_empty q) do
    ignore (Queue.pop q)
  done
