(* Fixture: DF001 df-list must fire — List call on the per-packet path. *)
let classify pkts = List.iter (fun p -> ignore p) pkts
