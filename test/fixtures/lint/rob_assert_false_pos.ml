(* Fixture: RB002 rob-assert-false must fire — bare crash in lib code. *)
let classify = function 0 -> "data" | 1 -> "ctrl" | _ -> assert false
