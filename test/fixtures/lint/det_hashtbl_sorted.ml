(* Fixture: DT004 must NOT fire — fold result piped into a sort. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
