(* Fixture: DF005 suppressed. *)
(* debug-only tap; bfc-lint: allow df-io *)
let on_dequeue uid = Printf.printf "deq %d\n" uid
