(* Fixture: DT001 suppressed. *)
(* bfc-lint: allow det-random *)
let jitter () = Random.int 100
