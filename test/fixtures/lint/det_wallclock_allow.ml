(* Fixture: DT002 suppressed. *)
(* bfc-lint: allow det-wallclock det-unix *)
let stamp () = Unix.gettimeofday ()
