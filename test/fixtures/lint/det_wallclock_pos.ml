(* Fixture: DT002 det-wallclock must fire — wall clock read in lib code. *)
let stamp () = Unix.gettimeofday ()
