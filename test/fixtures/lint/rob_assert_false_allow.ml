(* Fixture: RB002 suppressed. *)
(* bfc-lint: allow rob-assert-false *)
let classify = function 0 -> "data" | 1 -> "ctrl" | _ -> assert false
