(* Fixture: DF003 df-rec must fire — recursion in a packet path. *)
let rec walk n = if n = 0 then 0 else walk (n - 1)
