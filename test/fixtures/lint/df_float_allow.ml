(* Fixture: DF004 suppressed. *)
(* bfc-lint: allow df-float *)
let threshold bytes factor = int_of_float (float_of_int bytes *. factor)
