(* Fixture: PF001 suppressed. *)
let arm_watchdog sim timeout =
  (* armed once at wiring time, not per packet; bfc-lint: allow pf-closure-timer *)
  ignore (Sim.after sim timeout (fun () -> ()))
