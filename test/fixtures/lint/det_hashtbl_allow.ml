(* Fixture: DT004 suppressed. *)
let total tbl =
  (* commutative sum, order-independent; bfc-lint: allow det-hashtbl-order *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
