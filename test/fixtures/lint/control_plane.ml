(* Fixture: DF rules skipped inside a control-plane binding; the same
   construct in an unmarked binding still fires. *)
(* bfc-lint: control-plane *)
let attach ports = List.map (fun p -> (p, 0.0 *. 1.5)) ports

let per_packet xs = List.length xs
