(* Fixture: DF001 suppressed by an allow directive on the binding. *)
(* bfc-lint: allow df-list *)
let classify pkts = List.iter (fun p -> ignore p) pkts
