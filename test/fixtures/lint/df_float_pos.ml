(* Fixture: DF004 df-float must fire — float arithmetic per packet. *)
let threshold bytes factor = int_of_float (float_of_int bytes *. factor)
