(* Fixture: DF002 df-while must fire — unbounded loop in a packet path. *)
let drain q =
  while not (Queue.is_empty q) do
    ignore (Queue.pop q)
  done
