(* Fixture: DF005 df-io must fire — printing from a packet path. *)
let on_dequeue uid = Printf.printf "deq %d\n" uid
