(* Third test battery: ExpressPass switch shaping, queue-delay metrics,
   ideal-FCT header accounting, the PS fluid model behind Fig. 3,
   exp-common scaffolding, and misc utility paths. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Exp_common = Bfc_sim.Exp_common
module Dist = Bfc_workload.Dist

let check = Alcotest.check

(* --------------------- ExpressPass switch shaping ------------------ *)

let test_xpass_credit_shaping () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let cfg = { Switch.default_config with Switch.queues_per_port = 4; buffer_bytes = max_int } in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  let sw =
    Switch.create ~sim
      ~node:(Topology.node t st.Topology.st_switch)
      ~ports:(Topology.ports t st.Topology.st_switch)
      ~config:cfg ~route ()
  in
  Bfc_transport.Xpass_switch.attach sw ~mtu_wire:1048;
  let arrivals = ref [] in
  (Topology.node t st.Topology.st_receiver).Node.handler <-
    (fun ~in_port:_ pkt ->
      if pkt.Packet.kind = Packet.Credit then arrivals := Sim.now sim :: !arrivals);
  let f = Flow.make ~id:1 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1000 ~arrival:0 () in
  (* burst 10 credits into the switch at t=0 *)
  for i = 1 to 10 do
    let c = Packet.make Packet.Credit ~flow:f ~src:f.Flow.src ~dst:f.Flow.dst ~size:64 () in
    c.Packet.ctrl_a <- i;
    Node.deliver (Topology.node t st.Topology.st_switch) ~in_port:0 c
  done;
  ignore (Sim.run_until_idle sim);
  let times = List.rev !arrivals in
  check Alcotest.int "all 10 forwarded" 10 (List.length times);
  (* consecutive credits at least one data-MTU serialization apart *)
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun g ->
      Alcotest.(check bool) (Printf.sprintf "gap %dns >= 83" g) true (g >= 83))
    (gaps times)

let test_xpass_credit_queue_cap () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let cfg = { Switch.default_config with Switch.queues_per_port = 4; buffer_bytes = max_int } in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  let sw =
    Switch.create ~sim
      ~node:(Topology.node t st.Topology.st_switch)
      ~ports:(Topology.ports t st.Topology.st_switch)
      ~config:cfg ~route ()
  in
  Bfc_transport.Xpass_switch.attach sw ~mtu_wire:1048;
  (Topology.node t st.Topology.st_receiver).Node.handler <- (fun ~in_port:_ _ -> ());
  let f = Flow.make ~id:1 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1000 ~arrival:0 () in
  for i = 1 to 40 do
    let c = Packet.make Packet.Credit ~flow:f ~src:f.Flow.src ~dst:f.Flow.dst ~size:64 () in
    c.Packet.ctrl_a <- i;
    Node.deliver (Topology.node t st.Topology.st_switch) ~in_port:0 c
  done;
  (* more than credit_cap (16) at once: the excess is dropped, which is
     ExpressPass's congestion signal *)
  Alcotest.(check bool) "excess credits dropped" true (Switch.drops sw > 0);
  check Alcotest.int "no data drops" 0 (Switch.data_drops sw)

(* ------------------------ Queue delay metrics ---------------------- *)

let test_watch_queue_delay () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params in
  let delays =
    Metrics.watch_queue_delay env ~filter:(fun ~sw:_ ~egress:_ -> true)
  in
  let ids = ref 0 in
  let flows =
    Bfc_workload.Traffic.long_lived
      ~pairs:
        [|
          (st.Topology.st_senders.(0), st.Topology.st_receiver);
          (st.Topology.st_senders.(1), st.Topology.st_receiver);
        |]
      ~size:500_000 ~ids ()
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Alcotest.(check bool) "samples recorded" true (Bfc_util.Stats.Sample.count delays > 100);
  (* two line-rate flows on one link: someone must queue *)
  Alcotest.(check bool) "nonzero delays seen" true
    (Bfc_util.Stats.Sample.max delays > 0.0)

(* -------------------- Ideal FCT header accounting ------------------ *)

let test_ideal_fct_extra_header () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let plain =
    Topology.ideal_fct st.Topology.s ~src:st.Topology.st_senders.(0)
      ~dst:st.Topology.st_receiver ~size:100_000 ~mtu:1000 ()
  in
  let int_hdr =
    Topology.ideal_fct st.Topology.s ~src:st.Topology.st_senders.(0)
      ~dst:st.Topology.st_receiver ~size:100_000 ~mtu:1000 ~extra_header:80 ()
  in
  Alcotest.(check bool) "INT header inflates the ideal too" true (int_hdr > plain)

let test_slowdown_uses_scheme_header () =
  (* HPCC's ideal accounts for its own 80B header, so a perfect HPCC run
     is not penalized for it *)
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.hpcc ~params:Runner.default_params in
  let f = Flow.make ~id:1 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:100_000 ~arrival:0 () in
  Runner.inject env [ f ];
  Runner.run env ~until:(Time.ms 2.0);
  Alcotest.(check bool) "completes" true (Flow.complete f);
  let s = Runner.slowdown env f in
  Alcotest.(check bool) (Printf.sprintf "lone flow near-ideal (%.3f)" s) true (s < 1.15)

(* ----------------------- Fig. 3 PS fluid model --------------------- *)

let test_ps_trace_sane () =
  let trace =
    Bfc_sim.Exp_motivation.ps_trace ~dist:Dist.google ~gbps:100.0 ~load:0.6 ~duration:5e6
      ~seed:9
  in
  Alcotest.(check bool) "events recorded" true (Array.length trace > 100);
  (* counts are nonnegative and change by arrival/departure steps *)
  Array.iter (fun (_, n) -> Alcotest.(check bool) "n >= 0" true (n >= 0)) trace;
  let times = Array.map fst trace in
  let sorted = Array.copy times in
  Array.sort compare sorted;
  check Alcotest.(array (float 1e-9)) "timestamps nondecreasing" sorted times

let test_ps_fair_share_change_scales () =
  let trace =
    Bfc_sim.Exp_motivation.ps_trace ~dist:Dist.google ~gbps:100.0 ~load:0.6 ~duration:2e7
      ~seed:9
  in
  let short =
    Bfc_sim.Exp_motivation.fair_share_change trace ~duration:2e7 ~interval:8e3
  in
  let long =
    Bfc_sim.Exp_motivation.fair_share_change trace ~duration:2e7 ~interval:512e3
  in
  Alcotest.(check bool)
    (Printf.sprintf "variability grows with interval (%.1f%% vs %.1f%%)" short long)
    true (long > short)

(* --------------------------- Exp scaffolding ----------------------- *)

let test_clos_scale_monotone () =
  let s1, t1, h1 = Exp_common.clos_scale Exp_common.Smoke in
  let s2, t2, h2 = Exp_common.clos_scale Exp_common.Quick in
  let s3, t3, h3 = Exp_common.clos_scale Exp_common.Paper in
  Alcotest.(check bool) "scales grow" true (s1 * t1 * h1 < s2 * t2 * h2 && s2 * t2 * h2 < s3 * t3 * h3);
  check Alcotest.(triple int int int) "paper scale is the paper's" (8, 8, 16) (s3, t3, h3)

let test_duration_scales_with_flow_size () =
  let g = Exp_common.duration Exp_common.Quick ~dist:Dist.google in
  let fb = Exp_common.duration Exp_common.Quick ~dist:Dist.fb_hadoop in
  Alcotest.(check bool) "bigger flows, longer trace" true (fb > g)

let test_default_incast () =
  check Alcotest.int "paper's 100:1" 100 Exp_common.default_incast.Exp_common.degree

(* ------------------------------ Misc util -------------------------- *)

let test_time_pp () =
  let s v = Format.asprintf "%a" Time.pp v in
  check Alcotest.string "ns" "42ns" (s 42);
  check Alcotest.string "us" "1.500us" (s 1500);
  check Alcotest.string "ms" "2.000ms" (s (Time.ms 2.0));
  check Alcotest.string "s" "1.500s" (s (Time.s 1.5))

let test_stats_cdf () =
  let sm = Bfc_util.Stats.Sample.create () in
  for i = 1 to 100 do
    Bfc_util.Stats.Sample.add sm (float_of_int i)
  done;
  let cdf = Bfc_util.Stats.Sample.cdf sm ~points:5 in
  check Alcotest.int "5 points" 5 (List.length cdf);
  let _, last_frac = List.nth cdf 4 in
  Alcotest.(check (float 1e-9)) "ends at 1" 1.0 last_frac

let test_rng_pick () =
  let rng = Bfc_util.Rng.create 8 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picks member" true (Array.mem (Bfc_util.Rng.pick rng a) a)
  done;
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Bfc_util.Rng.pick rng [||]);
       false
     with Invalid_argument _ -> true)

let test_homa_unsched_prio_boundaries () =
  let p =
    Bfc_transport.Homa.params_for ~dist:Dist.google ~total_prios:8 ~rtt_bytes:100_000
      ~spray:true
  in
  let open Bfc_transport.Homa in
  check Alcotest.int "tiniest = prio 0" 0 (unsched_prio p ~size:1);
  check Alcotest.int "huge = last unsched level" (p.unsched_prios - 1)
    (unsched_prio p ~size:max_int)

let test_flow_table_mult_controls_collisions () =
  (* smaller tables produce more index collisions for the same flow set *)
  let collisions mult =
    let ft = Bfc_core.Flow_table.create ~egresses:1 ~queues_per_port:32 ~mult in
    let slots = Bfc_core.Flow_table.slots_per_port ft in
    let seen = Hashtbl.create 64 in
    let coll = ref 0 in
    for id = 0 to 499 do
      let f = Flow.make ~id ~src:0 ~dst:1 ~size:1 ~arrival:0 () in
      let slot = Flow.hash f mod slots in
      if Hashtbl.mem seen slot then incr coll else Hashtbl.add seen slot ()
    done;
    !coll
  in
  Alcotest.(check bool)
    (Printf.sprintf "4x (%d) worse than 100x (%d)" (collisions 4) (collisions 100))
    true
    (collisions 4 > collisions 100)

(* ------------------------------- Tracer ---------------------------- *)

let test_tracer_records_pauses () =
  let sim = Sim.create () in
  let db = Topology.dumbbell sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:db.Topology.d ~scheme:Scheme.bfc ~params:Runner.default_params in
  let tracer = Bfc_sim.Tracer.attach env ~capacity:256 in
  let ids = ref 0 in
  let flows =
    Bfc_workload.Traffic.long_lived
      ~pairs:
        [|
          (db.Topology.senders.(0), db.Topology.receiver);
          (db.Topology.senders.(1), db.Topology.receiver);
        |]
      ~size:200_000 ~ids ()
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 5.0);
  let is_pause e = match e.Bfc_sim.Tracer.ev with Bfc_sim.Tracer.Pause_rx _ -> true | _ -> false in
  let is_resume e = match e.Bfc_sim.Tracer.ev with Bfc_sim.Tracer.Resume_rx _ -> true | _ -> false in
  let pauses = Bfc_sim.Tracer.count tracer ~pred:is_pause in
  let resumes = Bfc_sim.Tracer.count tracer ~pred:is_resume in
  Alcotest.(check bool) "pauses observed" true (pauses > 0);
  check Alcotest.int "balanced" pauses resumes;
  (* chronological order *)
  let evs = Bfc_sim.Tracer.events tracer in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Bfc_sim.Tracer.at <= b.Bfc_sim.Tracer.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted evs);
  Alcotest.(check bool) "renders" true (String.length (Bfc_sim.Tracer.render tracer) > 0);
  (* balance list agrees *)
  let total_p = List.fold_left (fun a (_, p, _) -> a + p) 0 (Bfc_sim.Tracer.pause_balance tracer) in
  check Alcotest.int "balance sums" pauses total_p

let test_tracer_ring_wraps () =
  let sim = Sim.create () in
  let db = Topology.dumbbell sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:db.Topology.d ~scheme:Scheme.bfc ~params:Runner.default_params in
  let tracer = Bfc_sim.Tracer.attach env ~capacity:4 in
  let ids = ref 0 in
  let flows =
    Bfc_workload.Traffic.long_lived
      ~pairs:
        [|
          (db.Topology.senders.(0), db.Topology.receiver);
          (db.Topology.senders.(1), db.Topology.receiver);
        |]
      ~size:500_000 ~ids ()
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Alcotest.(check bool) "observed more than capacity" true
    (Bfc_sim.Tracer.observed tracer > 4);
  check Alcotest.int "ring holds capacity" 4 (List.length (Bfc_sim.Tracer.events tracer))

let test_jain_fairness_metric () =
  (* equal-rate synthetic flows: index 1; skewed flows: index < 1 *)
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params in
  let mk id size fct =
    let f = Flow.make ~id ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size ~arrival:0 () in
    f.Flow.finish <- fct;
    f
  in
  let fair = [ mk 1 1000 100; mk 2 1000 100 ] in
  Alcotest.(check (float 1e-9)) "fair = 1" 1.0 (Metrics.jain_fairness env ~min_size:0 fair);
  let skew = [ mk 3 1000 100; mk 4 1000 1000 ] in
  Alcotest.(check bool) "skewed < 1" true (Metrics.jain_fairness env ~min_size:0 skew < 0.7)

let test_csv_export () =
  let table =
    { Exp_common.title = "t"; header = [ "a"; "b" ]; rows = [ [ "1"; "with,comma" ] ] }
  in
  let path = Filename.temp_file "bfc_csv" ".csv" in
  Exp_common.write_csv table ~path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  check Alcotest.(list string) "csv content"
    [ "# t"; "a,b"; "1,\"with,comma\"" ]
    (List.rev !lines)

let suite =
  [
    ("tracer records pauses", `Quick, test_tracer_records_pauses);
    ("tracer ring wraps", `Quick, test_tracer_ring_wraps);
    ("jain fairness metric", `Quick, test_jain_fairness_metric);
    ("csv export", `Quick, test_csv_export);
    ("xpass credit shaping", `Quick, test_xpass_credit_shaping);
    ("xpass credit queue cap", `Quick, test_xpass_credit_queue_cap);
    ("watch queue delay", `Quick, test_watch_queue_delay);
    ("ideal fct extra header", `Quick, test_ideal_fct_extra_header);
    ("slowdown respects scheme header", `Quick, test_slowdown_uses_scheme_header);
    ("ps trace sane", `Quick, test_ps_trace_sane);
    ("ps fair-share change scales", `Quick, test_ps_fair_share_change_scales);
    ("clos scale monotone", `Quick, test_clos_scale_monotone);
    ("duration scales", `Quick, test_duration_scales_with_flow_size);
    ("default incast", `Quick, test_default_incast);
    ("time pp", `Quick, test_time_pp);
    ("stats cdf", `Quick, test_stats_cdf);
    ("rng pick", `Quick, test_rng_pick);
    ("homa prio boundaries", `Quick, test_homa_unsched_prio_boundaries);
    ("flow table mult vs collisions", `Quick, test_flow_table_mult_controls_collisions);
  ]
