(* PDES layer tests (PR 8): the partition map invariants (qcheck), the
   SPSC inter-shard channel, the late-rank queue insertion both backends
   must agree on, and the headline property of the whole subsystem — a
   sharded run is byte-identical to the sequential run of the same
   experiment. *)

open Alcotest
module Heap = Bfc_util.Heap
module Wheel = Bfc_util.Wheel
module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Channel = Bfc_engine.Channel
module Topology = Bfc_net.Topology
module Partition = Bfc_net.Partition
module Flow = Bfc_net.Flow
module Pdes = Bfc_sim.Pdes
module Exp_common = Bfc_sim.Exp_common
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner

(* ------------------------------ channel ---------------------------- *)

let test_channel_fifo () =
  let c = Channel.create ~capacity:8 in
  for i = 0 to 7 do
    check bool "push accepted" true (Channel.try_push c i)
  done;
  check bool "full channel rejects" false (Channel.try_push c 99);
  for i = 0 to 7 do
    match Channel.pop c with
    | Some v -> check int "FIFO order" i v
    | None -> fail "unexpected empty"
  done;
  check bool "drained" true (Channel.is_empty c);
  check (option int) "pop on empty" None (Channel.pop c)

let test_channel_wraparound () =
  let c = Channel.create ~capacity:4 in
  (* push/pop interleaved well past the ring size *)
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 100 do
    if Channel.try_push c !next_in then incr next_in;
    if Channel.try_push c !next_in then incr next_in;
    match Channel.pop c with
    | Some v ->
      check int "wraparound order" !next_out v;
      incr next_out
    | None -> ()
  done;
  check int "pushed counter" !next_in (Channel.pushed c);
  check int "popped counter" !next_out (Channel.popped c)

(* ------------------------- late-rank insertion --------------------- *)

(* The wheel's [push_late] and the heap's ranked push must produce the
   same (priority, rank, seq) pop order; drive both with an identical
   interleaving of monotone pushes and out-of-order late inserts. *)
let test_push_late_matches_heap () =
  let rng = Bfc_util.Rng.create 11 in
  for _round = 1 to 20 do
    let h = Heap.create () and w = Wheel.create () in
    let n = 60 in
    let tagged = ref [] in
    let tag = ref 0 in
    for _ = 1 to n do
      let time = 1 + Bfc_util.Rng.int rng 40 in
      let late = Bfc_util.Rng.int rng 3 = 0 in
      let id = !tag in
      incr tag;
      if late then begin
        let rank = Bfc_util.Rng.int rng 40 in
        Heap.push h ~rank ~priority:time id;
        Wheel.push_late w ~priority:time ~rank id
      end
      else begin
        (* monotone path: rank grows with every push, like a sim clock *)
        let rank = 100 + id in
        Heap.push h ~rank ~priority:time id;
        Wheel.push w ~rank ~priority:time id
      end;
      tagged := id :: !tagged
    done;
    let drain_h = ref [] and drain_w = ref [] in
    for _ = 1 to n do
      drain_h := Heap.pop_min_exn h :: !drain_h;
      drain_w := Wheel.pop_min_exn w :: !drain_w
    done;
    check (list int) "heap and wheel agree on late-rank order" (List.rev !drain_h)
      (List.rev !drain_w)
  done

(* --------------------------- partition maps ------------------------ *)

let mk_clos ~spines ~tors ~hosts_per_tor =
  let sim = Sim.create () in
  Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0)

(* Any clos_pods or generic partition must be a true partition of the
   topology: every node in exactly one shard, reverse endpoints paired,
   positive propagation over the cut — exactly [Partition.check]. *)
let prop_partition_sound =
  QCheck.Test.make ~count:60 ~name:"partition maps pass Partition.check"
    QCheck.(triple (int_range 1 4) (int_range 1 6) (int_range 1 4))
    (fun (spines, tors, hosts_per_tor) ->
      let cl = mk_clos ~spines ~tors ~hosts_per_tor in
      let ok t =
        match Partition.check cl.Topology.t t with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_reportf "check: %s" e
      in
      let shard_counts =
        List.filter (fun s -> s <= tors) [ 1; 2; 3; tors ] |> List.sort_uniq compare
      in
      List.for_all
        (fun shards ->
          ok (Partition.clos_pods cl ~shards) && ok (Partition.generic cl.Topology.t ~shards))
        shard_counts)

(* Ownership totality: every node owned by exactly the shard the map
   reports, and the cut is symmetric (u->v crosses iff v->u crosses). *)
let prop_partition_cut_symmetric =
  QCheck.Test.make ~count:40 ~name:"partition cut is symmetric"
    QCheck.(pair (int_range 1 4) (int_range 2 6))
    (fun (spines, tors) ->
      let cl = mk_clos ~spines ~tors ~hosts_per_tor:2 in
      let topo = cl.Topology.t in
      let t = Partition.clos_pods cl ~shards:(min 2 tors) in
      let n = Array.length (Topology.nodes topo) in
      for id = 0 to n - 1 do
        let o = Partition.owner t id in
        if o < 0 || o >= Partition.shards t then
          QCheck.Test.fail_reportf "node %d owner %d out of range" id o
      done;
      let crossings = Hashtbl.create 64 in
      Partition.iter_cut topo t (fun ~src p ->
          let dst = (Bfc_net.Port.peer p).Bfc_net.Node.id in
          Hashtbl.replace crossings (src, dst) ());
      Hashtbl.iter
        (fun (u, v) () ->
          if not (Hashtbl.mem crossings (v, u)) then
            QCheck.Test.fail_reportf "cut has %d->%d but not %d->%d" u v v u)
        crossings;
      true)

let test_partition_rejects_bad_map () =
  let cl = mk_clos ~spines:2 ~tors:2 ~hosts_per_tor:2 in
  let topo = cl.Topology.t in
  let n = Array.length (Topology.nodes topo) in
  (match Partition.clos_pods cl ~shards:3 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "clos_pods: shards > tors accepted");
  (match Partition.make ~shards:2 ~owner:(Array.make n 5) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "make: out-of-range owner accepted");
  (* wrong length is a structural error caught by check *)
  let bad = Partition.make ~shards:2 ~owner:(Array.make (n - 1) 0) in
  match Partition.check topo bad with
  | Error _ -> ()
  | Ok () -> fail "check: wrong owner length accepted"

(* ----------------------- sharded differential ---------------------- *)

let flow_sig f =
  (f.Flow.id, f.Flow.src, f.Flow.dst, f.Flow.size, f.Flow.delivered, f.Flow.finish, f.Flow.first_byte)

let run_differential label setup =
  let seq = Exp_common.run_std_seq setup in
  let sh = Exp_common.run_std_sharded setup ~shards:2 in
  check int (label ^ ": injected")
    (Runner.injected seq.Exp_common.env)
    (Runner.injected sh.Exp_common.env);
  check int (label ^ ": completed")
    (Runner.completed seq.Exp_common.env)
    (Runner.completed sh.Exp_common.env);
  let fs = seq.Exp_common.flows and fh = sh.Exp_common.flows in
  check int (label ^ ": flow count") (List.length fs) (List.length fh);
  List.iter2
    (fun a b ->
      let (ida, _, _, _, da, fa, ba) = flow_sig a in
      let (idb, _, _, _, db, fb, bb) = flow_sig b in
      if flow_sig a <> flow_sig b then
        failf "%s: flow %d/%d diverged: seq (del %d fin %d fb %d) vs sharded (del %d fin %d fb %d)"
          label ida idb da fa ba db fb bb)
    fs fh;
  check
    (list (list string))
    (label ^ ": fct rows")
    (Exp_common.fct_rows seq) (Exp_common.fct_rows sh);
  check (float 0.0)
    (label ^ ": buffer p99")
    (Exp_common.buffer_p99 seq) (Exp_common.buffer_p99 sh)

let test_differential_fig7_style () =
  let base = Exp_common.std Exp_common.Smoke (Scheme.Bfc Scheme.bfc_default) in
  run_differential "fig7-style" { base with Exp_common.sp_seed = 7 }

let test_differential_incast () =
  let base = Exp_common.std Exp_common.Smoke (Scheme.Bfc Scheme.bfc_default) in
  run_differential "incast"
    { base with Exp_common.sp_incast = Some Exp_common.default_incast; sp_seed = 3 }

let test_differential_heap_backend () =
  (* the barrier's late-rank insert has a separate code path per backend;
     hold the heap to the same byte-identity *)
  let prev = Sim.default_sched () in
  Sim.set_default_sched Sim.Heap;
  Fun.protect
    ~finally:(fun () -> Sim.set_default_sched prev)
    (fun () ->
      let base = Exp_common.std Exp_common.Smoke (Scheme.Bfc Scheme.bfc_default) in
      run_differential "heap backend" { base with Exp_common.sp_seed = 5 })

let suite =
  [
    test_case "channel FIFO + bounded" `Quick test_channel_fifo;
    test_case "channel wraparound" `Quick test_channel_wraparound;
    test_case "push_late matches heap order" `Quick test_push_late_matches_heap;
    QCheck_alcotest.to_alcotest prop_partition_sound;
    QCheck_alcotest.to_alcotest prop_partition_cut_symmetric;
    test_case "partition rejects bad maps" `Quick test_partition_rejects_bad_map;
    test_case "sharded = sequential (fig7-style)" `Slow test_differential_fig7_style;
    test_case "sharded = sequential (incast)" `Slow test_differential_incast;
    test_case "sharded = sequential (heap backend)" `Slow test_differential_heap_backend;
  ]
