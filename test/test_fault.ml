(* Fault injection and the runtime invariant auditor: watchdog recovery
   from lost Resume frames, auditor soundness (clean runs pass, corrupted
   state trips), link flaps, switch reboots, and the structured errors
   added alongside (Sim.Runaway, Port.Busy, Rng.bernoulli). *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Rng = Bfc_util.Rng
module Node = Bfc_net.Node
module Packet = Bfc_net.Packet
module Port = Bfc_net.Port
module Flow = Bfc_net.Flow
module Topology = Bfc_net.Topology
module Fifo = Bfc_switch.Fifo
module Switch = Bfc_switch.Switch
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Loss = Bfc_fault.Loss
module Injector = Bfc_fault.Injector
module Auditor = Bfc_fault.Auditor

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Satellites: structured errors and Rng.bernoulli                     *)

let test_bernoulli () =
  let r = Rng.create 42 in
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Rng.bernoulli: probability 1.5 not in [0, 1]") (fun () ->
      ignore (Rng.bernoulli r 1.5));
  Alcotest.check_raises "p < 0 rejected"
    (Invalid_argument "Rng.bernoulli: probability -0.1 not in [0, 1]") (fun () ->
      ignore (Rng.bernoulli r (-0.1)));
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never fires" false (Rng.bernoulli r 0.0);
    check Alcotest.bool "p=1 always fires" true (Rng.bernoulli r 1.0)
  done;
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "p=0.3 frequency sane (%d/10000)" !hits)
    true
    (!hits > 2_700 && !hits < 3_300)

let test_runaway () =
  let sim = Sim.create () in
  let rec loop () = ignore (Sim.after sim 10 loop) in
  loop ();
  match Sim.run_until_idle ~cap:1_000 sim with
  | _ -> Alcotest.fail "expected Sim.Runaway"
  | exception Sim.Runaway { now; pending_events } ->
    Alcotest.(check bool) "runaway carries progress" true (now > 0 && pending_events > 0)

let test_port_busy () =
  let sim = Sim.create () in
  let peer = Node.make ~id:1 ~kind:Node.Host ~name:"h1" in
  peer.Node.handler <- (fun ~in_port:_ _ -> ());
  let p = Port.create ~sim ~gid:7 ~gbps:100.0 ~prop:(Time.us 1.0) ~peer ~peer_port:0 in
  let pkt () = Packet.make Packet.Data ~src:0 ~dst:1 ~size:1000 () in
  Port.send p (pkt ());
  (match Port.send p (pkt ()) with
  | () -> Alcotest.fail "expected Port.Busy"
  | exception Port.Busy { gid; now } ->
    check Alcotest.int "busy carries gid" 7 gid;
    check Alcotest.int "busy carries time" (Sim.now sim) now);
  ignore (Sim.run_until_idle sim)

(* ------------------------------------------------------------------ *)
(* Loss model                                                          *)

let test_loss_model () =
  Alcotest.check_raises "bad probability rejected"
    (Invalid_argument "Loss.add_prob: probability not in [0, 1]") (fun () ->
      Loss.add_prob (Loss.create ~seed:1) ~p:2.0 Loss.any);
  let l = Loss.create ~seed:1 in
  Loss.add_nth l ~n:3 Loss.resumes;
  Loss.add_every l ~n:2 Loss.data;
  let resume () = Packet.make Packet.Resume ~src:0 ~dst:1 ~size:64 () in
  let data () = Packet.make Packet.Data ~src:0 ~dst:1 ~size:1000 () in
  let r = List.init 5 (fun _ -> Loss.decide l (resume ())) in
  check (Alcotest.list Alcotest.bool) "exactly the 3rd Resume lost"
    [ false; false; true; false; false ]
    r;
  let d = List.init 6 (fun _ -> Loss.decide l (data ())) in
  check (Alcotest.list Alcotest.bool) "every 2nd data packet lost"
    [ false; true; false; true; false; true ]
    d;
  check Alcotest.int "losses counted" 4 (Loss.total l)

(* ------------------------------------------------------------------ *)
(* Incast under faults                                                 *)

let star_incast ?(senders = 16) ?(size = 32_000) ~watchdog () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params =
    {
      Runner.default_params with
      Runner.pause_watchdog = Option.map Time.us watchdog;
    }
  in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params in
  let flows =
    List.init senders (fun i ->
        Flow.make ~id:i ~src:st.Topology.st_senders.(i) ~dst:st.Topology.st_receiver ~size
          ~arrival:(Time.us (0.1 *. float_of_int i))
          ~is_incast:true ())
  in
  (st, env, flows)

let lossy_auditor env =
  Auditor.attach
    ~config:{ Auditor.default_config with Auditor.check_pairing = false; fail_fast = false }
    env

let resume_loss inj =
  (* one deterministic early loss so the scenario never depends on the
     seed, plus the 1% background loss from the issue *)
  let loss = Loss.create ~seed:11 in
  Loss.add_nth loss ~n:1 Loss.resumes;
  Loss.add_prob loss ~p:0.01 Loss.resumes;
  Injector.set_loss_everywhere inj loss;
  loss

let test_watchdog_recovers_lost_resume () =
  let _, env, flows = star_incast ~watchdog:(Some 50.0) () in
  let inj = Injector.attach env in
  let loss = resume_loss inj in
  let aud = lossy_auditor env in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 10.0);
  Auditor.check aud;
  Alcotest.(check bool) "a Resume was lost" true (Loss.total loss >= 1);
  check Alcotest.int "all flows complete despite lost Resumes" (Runner.injected env)
    (Runner.completed env);
  Alcotest.(check bool) "watchdog fired" true (Metrics.watchdog_fires env >= 1);
  check Alcotest.int "auditor clean" 0 (Auditor.violation_count aud)

let test_no_watchdog_stalls () =
  let _, env, flows = star_incast ~watchdog:None () in
  let inj = Injector.attach env in
  let loss = resume_loss inj in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 10.0);
  Alcotest.(check bool) "a Resume was lost" true (Loss.total loss >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "run stalls without the watchdog (%d/%d)" (Runner.completed env)
       (Runner.injected env))
    true
    (Runner.completed env < Runner.injected env)

let test_auditor_clean_run () =
  (* strictest settings: pairing on, fail_fast on -- any violation raises *)
  let _, env, flows = star_incast ~watchdog:None () in
  let aud = Auditor.attach env in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 10.0);
  Auditor.check aud;
  Alcotest.(check bool) "sweeps ran" true (Auditor.checks_run aud > 10);
  check Alcotest.bool "no violations on a clean incast" true (Auditor.ok aud)

let test_auditor_trips_on_corruption () =
  let _, env, flows = star_incast ~senders:4 ~watchdog:None () in
  let aud = Auditor.attach env in
  Runner.inject env flows;
  Runner.run env ~until:(Time.us 5.0);
  (* smuggle a packet into a queue behind the switch's back: byte and
     packet accounting must both notice *)
  let sw = (Runner.switches env).(0) in
  let q = (Switch.queues sw ~egress:0).(0) in
  Fifo.push q (Packet.make Packet.Data ~src:0 ~dst:1 ~size:1000 ());
  (match Auditor.check aud with
  | () -> Alcotest.fail "expected Audit_violation"
  | exception Auditor.Audit_violation v ->
    Alcotest.(check bool)
      ("violation names a real invariant: " ^ v.Auditor.v_invariant)
      true
      (List.mem v.Auditor.v_invariant
         [ "egress-bytes"; "buffer-bytes"; "packet-conservation" ]));
  Alcotest.(check bool) "violation recorded" true (Auditor.violation_count aud >= 1)

let test_link_flap_bfc () =
  let st, env, flows = star_incast ~watchdog:(Some 50.0) () in
  let inj = Injector.attach env in
  let aud = lossy_auditor env in
  Injector.flap inj ~gid:st.Topology.st_bottleneck_gid ~start:(Time.us 30.0)
    ~down_for:(Time.us 10.0) ~period:(Time.us 100.0) ~count:3;
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 30.0);
  Auditor.check aud;
  Alcotest.(check bool) "flap lost packets on the wire" true (Injector.faults_injected inj > 0);
  check Alcotest.int "BFC finishes through the flaps" (Runner.injected env) (Runner.completed env);
  check Alcotest.int "zero auditor violations" 0 (Auditor.violation_count aud)

let test_link_flap_pfc () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:16 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.pfc_only ~params:Runner.default_params in
  let inj = Injector.attach env in
  Injector.flap inj ~gid:st.Topology.st_bottleneck_gid ~start:(Time.us 30.0)
    ~down_for:(Time.us 10.0) ~period:(Time.us 100.0) ~count:3;
  let flows =
    List.init 16 (fun i ->
        Flow.make ~id:i ~src:st.Topology.st_senders.(i) ~dst:st.Topology.st_receiver ~size:32_000
          ~arrival:(Time.us (0.1 *. float_of_int i))
          ~is_incast:true ())
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 30.0);
  check Alcotest.int "PFC finishes through the flaps" (Runner.injected env) (Runner.completed env);
  let total_pkts = 16 * ((32_000 / Runner.default_params.Runner.mtu) + 1) in
  Alcotest.(check bool)
    (Printf.sprintf "PFC drops bounded (%d)" (Runner.total_drops env))
    true
    (Runner.total_drops env < total_pkts)

let test_reboot_conservation () =
  let _, env, flows = star_incast ~watchdog:(Some 50.0) () in
  let inj = Injector.attach env in
  let aud = lossy_auditor env in
  let sw_node = (Runner.switches env).(0) |> Switch.node_id in
  let flushed = ref 0 in
  ignore
    (Sim.at (Runner.sim env) (Time.us 40.0) (fun () ->
         flushed := Injector.reboot_switch inj ~node:sw_node ~down_for:(Time.us 20.0) ()));
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 30.0);
  Auditor.check aud;
  Alcotest.(check bool) "reboot flushed resident packets" true (!flushed > 0);
  check Alcotest.int "one reboot recorded" 1 (Metrics.reboots env);
  check Alcotest.int "flushed packets counted as drops" (Runner.total_drops env) !flushed;
  check Alcotest.int "all flows recover after the crash" (Runner.injected env)
    (Runner.completed env);
  check Alcotest.int "conservation holds across the wipe" 0 (Auditor.violation_count aud)

let test_reboot_respects_prior_outage () =
  (* Regression: a reboot's down_for schedule must compose with existing
     link faults. The pre-downed bottleneck link stays down through the
     reboot's restore sweep (no early resurrection, no double-counted
     fault_links_down), and a *fresh* outage of a reboot-downed link is
     not clobbered by the reboot's stale restore timer. *)
  let module Registry = Bfc_obs.Registry in
  let st, env, _ = star_incast ~watchdog:None () in
  let sim = Runner.sim env in
  let reg = Registry.create () in
  let inj = Injector.attach ~registry:reg env in
  let g_prior = st.Topology.st_bottleneck_gid in
  let g_other =
    let ports = Topology.ports (Runner.topo env) st.Topology.st_switch in
    let found = ref (-1) in
    Array.iter (fun p -> if !found < 0 && Port.gid p <> g_prior then found := Port.gid p) ports;
    !found
  in
  let links_down () =
    int_of_float (List.assoc "fault_links_down" (Registry.sample_gauges reg))
  in
  Injector.link_down inj ~gid:g_prior;
  let before = links_down () in
  ignore
    (Sim.at sim (Time.us 10.0) (fun () ->
         ignore (Injector.reboot_switch inj ~node:st.Topology.st_switch ~down_for:(Time.us 20.0) ())));
  (* while the reboot holds g_other down, an independent fault cycles it:
     up, then down again -- a new outage the stale timer must not undo *)
  ignore
    (Sim.at sim (Time.us 20.0) (fun () ->
         Injector.link_up inj ~gid:g_other;
         Injector.link_down inj ~gid:g_other));
  let after_restore = ref (-1) in
  let prior_still_down = ref false in
  let fresh_still_down = ref false in
  ignore
    (Sim.at sim (Time.us 40.0) (fun () ->
         after_restore := links_down ();
         prior_still_down := Injector.is_down inj ~gid:g_prior;
         fresh_still_down := Injector.is_down inj ~gid:g_other;
         Injector.link_up inj ~gid:g_prior;
         Injector.link_up inj ~gid:g_other));
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "prior outage covers both directions" 2 before;
  Alcotest.(check bool) "reboot restore leaves the prior outage down" true !prior_still_down;
  Alcotest.(check bool) "stale reboot timer spares the fresh outage" true !fresh_still_down;
  check Alcotest.int "exactly the two live outages remain" 4 !after_restore;
  check Alcotest.int "explicit link_up clears everything" 0 (links_down ())

let test_flap_rejects_bad_schedule () =
  let _, env, _ = star_incast ~watchdog:None () in
  let inj = Injector.attach env in
  Alcotest.check_raises "down_for >= period rejected"
    (Invalid_argument "Injector.flap: down_for/period") (fun () ->
      Injector.flap inj ~gid:0 ~start:0 ~down_for:(Time.us 10.0) ~period:(Time.us 10.0) ~count:1)

let suite =
  [
    Alcotest.test_case "rng bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "sim runaway is structured" `Quick test_runaway;
    Alcotest.test_case "port busy is structured" `Quick test_port_busy;
    Alcotest.test_case "loss model" `Quick test_loss_model;
    Alcotest.test_case "watchdog recovers lost resume" `Quick test_watchdog_recovers_lost_resume;
    Alcotest.test_case "no watchdog stalls" `Quick test_no_watchdog_stalls;
    Alcotest.test_case "auditor clean run" `Quick test_auditor_clean_run;
    Alcotest.test_case "auditor trips on corruption" `Quick test_auditor_trips_on_corruption;
    Alcotest.test_case "link flap bfc" `Quick test_link_flap_bfc;
    Alcotest.test_case "link flap pfc" `Quick test_link_flap_pfc;
    Alcotest.test_case "reboot conservation" `Quick test_reboot_conservation;
    Alcotest.test_case "reboot respects prior outage" `Quick test_reboot_respects_prior_outage;
    Alcotest.test_case "flap validates schedule" `Quick test_flap_rejects_bad_schedule;
  ]
