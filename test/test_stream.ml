(* Streaming observability: quantile sketch accuracy and merge algebra,
   binary flowlog roundtrips (chunk boundaries, truncation), and the
   sketch-backed FCT path against the exact one — including the
   sharded-vs-sequential byte-identity differential. *)

module Sketch = Bfc_obs.Sketch
module Flowlog = Bfc_obs.Flowlog
module Sample = Bfc_util.Stats.Sample
module Rng = Bfc_util.Rng
module Exp_common = Bfc_sim.Exp_common
module Metrics = Bfc_sim.Metrics

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Sketch unit tests *)

let test_sketch_basics () =
  let s = Sketch.create () in
  checkb "empty" true (Sketch.is_empty s);
  List.iter (Sketch.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  checki "count" 5 (Sketch.count s);
  check (Alcotest.float 1e-9) "min exact" 1.0 (Sketch.min s);
  check (Alcotest.float 1e-9) "max exact" 5.0 (Sketch.max s);
  (* extremes clamp to the exact observed range *)
  check (Alcotest.float 1e-9) "q0 = min" 1.0 (Sketch.quantile s 0.0);
  check (Alcotest.float 1e-9) "q1 = max" 5.0 (Sketch.quantile s 1.0);
  let a = Sketch.alpha s in
  checkb "alpha tightened" true (a <= 0.01);
  let p50 = Sketch.quantile s 0.5 in
  checkb "median near 3" true (Float.abs (p50 -. 3.0) /. 3.0 <= a)

let test_sketch_non_positive () =
  let s = Sketch.create () in
  List.iter (Sketch.add s) [ 0.0; -1.0; Float.nan; Float.infinity ];
  checki "all counted" 4 (Sketch.count s);
  checkb "min is nan (no bucketed values)" true (Float.is_nan (Sketch.min s));
  (* non-positive observations sit at the low end as zeros *)
  check (Alcotest.float 1e-9) "median of junk is 0" 0.0 (Sketch.quantile s 0.5);
  Sketch.add s 10.0;
  checkb "positive value lands above the junk" true (Sketch.quantile s 1.0 > 9.0)

let test_sketch_errors () =
  Alcotest.check_raises "alpha too big" (Invalid_argument "Sketch.create: alpha must be in (0, 0.5)")
    (fun () -> ignore (Sketch.create ~alpha:0.5 ()));
  let s = Sketch.create () in
  Alcotest.check_raises "empty quantile" (Invalid_argument "Sketch.quantile: empty sketch")
    (fun () -> ignore (Sketch.quantile s 0.5));
  Sketch.add s 1.0;
  Alcotest.check_raises "q out of range" (Invalid_argument "Sketch.quantile: q out of range")
    (fun () -> ignore (Sketch.quantile s 1.5));
  let m = Sketch.create ~alpha:0.1 () in
  Alcotest.check_raises "merge resolution mismatch"
    (Invalid_argument "Sketch.merge: mismatched resolution") (fun () -> Sketch.merge ~into:m s)

let test_sketch_decode_rejects_garbage () =
  Alcotest.check_raises "bad magic" (Invalid_argument "Sketch.decode: bad magic") (fun () ->
      ignore (Sketch.decode "NOTASKETCH"));
  let s = Sketch.create () in
  List.iter (Sketch.add s) [ 1.0; 100.0 ];
  let e = Sketch.encode s in
  Alcotest.check_raises "truncated" (Invalid_argument "Sketch.decode: truncated") (fun () ->
      ignore (Sketch.decode (String.sub e 0 (String.length e - 3))))

(* ------------------------------------------------------------------ *)
(* Sketch properties: accuracy across distribution shapes, merge algebra *)

(* Positive samples from three shapes the FCT slowdowns exercise:
   constant, bimodal (short-flow mass plus a heavy cluster), heavy tail
   (u^-2 pareto-ish). *)
let gen_values dist seed n =
  let rng = Rng.create (seed + 1) in
  List.init n (fun _ ->
      match dist with
      | 0 -> 42.0
      | 1 ->
        if Rng.int rng 10 < 7 then 1.0 +. Rng.float rng
        else 500.0 +. (100.0 *. Rng.float rng)
      | _ ->
        let u = 1.0 -. Rng.float rng in
        1.0 /. (u *. u))

let dist_name = function 0 -> "constant" | 1 -> "bimodal" | _ -> "heavy-tail"

let prop_sketch_accuracy =
  QCheck.Test.make ~name:"sketch percentiles within alpha of exact, any distribution" ~count:60
    QCheck.(triple (int_range 0 2) (int_range 0 999) (int_range 1 3000))
    (fun (dist, seed, n) ->
      let values = gen_values dist seed n in
      let sk = Sketch.create () in
      let ex = Sample.create () in
      List.iter
        (fun v ->
          Sketch.add sk v;
          Sample.add ex v)
        values;
      let a = Sketch.alpha sk in
      List.for_all
        (fun p ->
          let exact = Sample.percentile ex p in
          let est = Sketch.percentile sk p in
          let ok = Float.abs (est -. exact) <= (a *. exact) +. 1e-9 in
          if not ok then
            QCheck.Test.fail_reportf "%s n=%d p%.0f: exact %.6f, sketch %.6f (alpha %.4f)"
              (dist_name dist) n p exact est a;
          ok)
        [ 0.0; 50.0; 90.0; 95.0; 99.0; 100.0 ])

let prop_sketch_merge_order_independent =
  QCheck.Test.make ~name:"merge is order-independent and matches single-sketch encode" ~count:60
    QCheck.(triple (int_range 0 2) (int_range 0 999) (int_range 3 2000))
    (fun (dist, seed, n) ->
      let values = Array.of_list (gen_values dist seed n) in
      let whole = Sketch.create () in
      Array.iter (Sketch.add whole) values;
      (* three parts, merged in two different orders *)
      let part lo hi =
        let s = Sketch.create () in
        for i = lo to hi - 1 do
          Sketch.add s values.(i)
        done;
        s
      in
      let a = part 0 (n / 3) and b = part (n / 3) (2 * n / 3) and c = part (2 * n / 3) n in
      let m1 = Sketch.create () in
      Sketch.merge ~into:m1 a;
      Sketch.merge ~into:m1 b;
      Sketch.merge ~into:m1 c;
      let m2 = Sketch.create () in
      Sketch.merge ~into:m2 c;
      Sketch.merge ~into:m2 a;
      Sketch.merge ~into:m2 b;
      String.equal (Sketch.encode whole) (Sketch.encode m1)
      && String.equal (Sketch.encode m1) (Sketch.encode m2))

let prop_sketch_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip preserves state" ~count:60
    QCheck.(triple (int_range 0 2) (int_range 0 999) (int_range 0 500))
    (fun (dist, seed, n) ->
      let sk = Sketch.create () in
      List.iter (Sketch.add sk) (gen_values dist seed n);
      let d = Sketch.decode (Sketch.encode sk) in
      checki "count" (Sketch.count sk) (Sketch.count d);
      String.equal (Sketch.encode sk) (Sketch.encode d)
      && (n = 0 || Float.equal (Sketch.quantile sk 0.5) (Sketch.quantile d 0.5)))

(* ------------------------------------------------------------------ *)
(* Flowlog: roundtrips at and around chunk boundaries, truncation *)

let mk_record i =
  {
    Flowlog.id = i;
    src = i * 3 mod 97;
    dst = (i * 7) + (1 mod 89);
    size = 1000 + (i mod 5000);
    incast = i mod 11 = 0;
    prio_class = i mod 3;
    arrival = float_of_int i *. 1e-6;
    fct = (float_of_int (i mod 50) +. 1.0) *. 1e-6;
    ideal = 1e-6;
  }

let write_log path ~chunk n =
  let oc = open_out_bin path in
  let w = Flowlog.Writer.create ~chunk oc in
  for i = 0 to n - 1 do
    Flowlog.Writer.append w (mk_record i)
  done;
  Flowlog.Writer.close w;
  close_out oc

let read_all path =
  let acc = ref [] in
  let truncated = Flowlog.iter_file path ~f:(fun r -> acc := r :: !acc) in
  (List.rev !acc, truncated)

let with_tmp f =
  let path = Filename.temp_file "bfc_flowlog" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_flowlog_boundaries () =
  (* counts straddling the chunk boundary, including 0 and exact multiples *)
  List.iter
    (fun n ->
      with_tmp (fun path ->
          write_log path ~chunk:64 n;
          let records, truncated = read_all path in
          checkb (Printf.sprintf "n=%d not truncated" n) false truncated;
          checki (Printf.sprintf "n=%d record count" n) n (List.length records);
          List.iteri
            (fun i r ->
              let e = mk_record i in
              if r <> e then Alcotest.failf "n=%d record %d mismatch" n i)
            records))
    [ 0; 1; 63; 64; 65; 128; 200 ]

let prop_flowlog_roundtrip =
  QCheck.Test.make ~name:"flowlog roundtrip for any count and chunk size" ~count:40
    QCheck.(pair (int_range 0 1500) (int_range 1 512))
    (fun (n, chunk) ->
      with_tmp (fun path ->
          write_log path ~chunk n;
          let records, truncated = read_all path in
          (not truncated) && List.length records = n
          && List.for_all2 (fun r i -> r = mk_record i) records (List.init n Fun.id)))

let test_flowlog_truncated () =
  with_tmp (fun path ->
      write_log path ~chunk:64 200;
      (* cut the file mid-way through the final chunk *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 (String.length full - 37)));
      let records, truncated = read_all path in
      checkb "truncated flag" true truncated;
      (* complete chunks (3 x 64 = 192) survive; the torn chunk is dropped *)
      checki "complete chunks preserved" 192 (List.length records);
      List.iteri
        (fun i r -> if r <> mk_record i then Alcotest.failf "record %d corrupted" i)
        records)

let test_flowlog_bad_header () =
  with_tmp (fun path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "NOTAFLOWLOG00000");
      Alcotest.check_raises "bad magic" (Invalid_argument "Flowlog: bad magic") (fun () ->
          ignore (read_all path)))

(* ------------------------------------------------------------------ *)
(* The sketch-backed FCT path on a real run: counts must equal the exact
   table's, percentiles must agree within alpha, and the sharded run's
   merged sketches must be byte-identical to the sequential run's. *)

let smoke_setup () =
  { (Exp_common.std Exp_common.Smoke Bfc_sim.Scheme.bfc) with Exp_common.sp_seed = 3 }

let with_streaming f =
  Exp_common.set_streaming true;
  Fun.protect ~finally:(fun () -> Exp_common.set_streaming false) f

let test_streaming_matches_exact () =
  with_streaming (fun () ->
      let r = Exp_common.run_std_seq (smoke_setup ()) in
      let sk = match r.Exp_common.sketches with Some sk -> sk | None -> Alcotest.fail "no sketches" in
      let exact =
        Metrics.fct_table r.Exp_common.env ~since:r.Exp_common.measure_from r.Exp_common.flows
      in
      let approx = Metrics.fct_table_of_sketches sk in
      let alpha = Metrics.sketches_alpha sk in
      List.iter2
        (fun (e : Metrics.fct_stats) (s : Metrics.fct_stats) ->
          checki (e.Metrics.bucket ^ " count") e.Metrics.count s.Metrics.count;
          if e.Metrics.count > 0 then
            List.iter2
              (fun (name, ev) sv ->
                if Float.abs (sv -. ev) > (alpha *. ev) +. 1e-9 then
                  Alcotest.failf "%s %s: exact %.4f vs sketch %.4f" e.Metrics.bucket name ev sv)
              [ ("p50", e.Metrics.p50); ("p95", e.Metrics.p95); ("p99", e.Metrics.p99) ]
              [ s.Metrics.p50; s.Metrics.p95; s.Metrics.p99 ])
        exact approx;
      (* fct_rows reports from the sketches on a streaming run; it drops
         empty buckets *)
      let nonzero = List.length (List.filter (fun (e : Metrics.fct_stats) -> e.Metrics.count > 0) exact) in
      checki "fct_rows row count" nonzero (List.length (Exp_common.fct_rows r)))

let test_streaming_sharded_byte_identical () =
  with_streaming (fun () ->
      let rseq = Exp_common.run_std_seq (smoke_setup ()) in
      let rsh = Exp_common.run_std_sharded (smoke_setup ()) ~shards:2 in
      let enc r =
        match r.Exp_common.sketches with
        | Some sk -> Metrics.sketches_encode sk
        | None -> Alcotest.fail "no sketches"
      in
      checkb "merged sketches byte-identical" true (String.equal (enc rseq) (enc rsh));
      check
        (Alcotest.list (Alcotest.list Alcotest.string))
        "fct rows identical" (Exp_common.fct_rows rseq) (Exp_common.fct_rows rsh))

let test_run_stream_smoke () =
  let r = Exp_common.run_stream ~streaming:true ~flows:2000 () in
  checkb "streaming" true r.Exp_common.sr_streaming;
  checki "all injected" 2000 r.Exp_common.sr_injected;
  checki "all completed" 2000 r.Exp_common.sr_completed;
  checkb "sketches present" true (r.Exp_common.sr_sketches <> None);
  checki "overall count" 2000 r.Exp_common.sr_overall.Metrics.count;
  checkb "peak heap sampled" true (r.Exp_common.sr_peak_heap_words > 0);
  (* exact leg on the same workload agrees on the flow accounting *)
  let e = Exp_common.run_stream ~streaming:false ~flows:2000 () in
  checkb "exact leg" false e.Exp_common.sr_streaming;
  checki "exact completed" 2000 e.Exp_common.sr_completed;
  checki "exact overall count" 2000 e.Exp_common.sr_overall.Metrics.count

let suite =
  [
    Alcotest.test_case "sketch basics" `Quick test_sketch_basics;
    Alcotest.test_case "sketch non-positive handling" `Quick test_sketch_non_positive;
    Alcotest.test_case "sketch argument errors" `Quick test_sketch_errors;
    Alcotest.test_case "sketch decode rejects garbage" `Quick test_sketch_decode_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_sketch_accuracy;
    QCheck_alcotest.to_alcotest prop_sketch_merge_order_independent;
    QCheck_alcotest.to_alcotest prop_sketch_encode_roundtrip;
    Alcotest.test_case "flowlog chunk boundaries" `Quick test_flowlog_boundaries;
    QCheck_alcotest.to_alcotest prop_flowlog_roundtrip;
    Alcotest.test_case "flowlog truncated file" `Quick test_flowlog_truncated;
    Alcotest.test_case "flowlog bad header" `Quick test_flowlog_bad_header;
    Alcotest.test_case "streaming FCT table matches exact" `Quick test_streaming_matches_exact;
    Alcotest.test_case "sharded streaming byte-identical" `Quick
      test_streaming_sharded_byte_identical;
    Alcotest.test_case "run_stream smoke" `Quick test_run_stream_smoke;
  ]
