(* Tests for the bfc-lint static checker: every rule has a firing fixture
   and a suppressed fixture, plus scope / sorted-context / control-plane /
   rendering / exit-code behaviour. *)

module Driver = Bfclint.Driver
module Diagnostic = Bfclint.Diagnostic
module Rule = Bfclint.Rule

(* dune runtest runs with cwd = the stanza dir; dune exec from the root. *)
let fixture_dir = if Sys.file_exists "fixtures/lint" then "fixtures/lint" else "test/fixtures/lint"

let lib_dir = if Sys.file_exists "../lib/bfc/dataplane.ml" then "../lib" else "lib"

(* Virtual paths place fixture sources in the scope a rule needs:
   DF rules only apply to the dataplane modules, DT/RB anywhere in lib/. *)
let dataplane_path = "lib/bfc/dataplane.ml"

let lib_path = "lib/sim/fixture.ml"

(* PF rules apply to the hot scheduling modules (Driver.perf_files). *)
let perf_path = "lib/switch/switch.ml"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_fixture ~virtual_path name =
  let path = Filename.concat fixture_dir name in
  match Driver.lint_source ~virtual_path ~path (read_file path) with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "fixture %s failed to lint: %s" name e

let lint_inline ~virtual_path source =
  match Driver.lint_source ~virtual_path ~path:virtual_path source with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "inline source failed to lint: %s" e

let rule_id (d : Diagnostic.t) = d.Diagnostic.rule.Rule.id

let fires id findings = List.exists (fun (d, sup) -> (not sup) && rule_id d = id) findings

let fires_suppressed id findings = List.exists (fun (d, sup) -> sup && rule_id d = id) findings

(* (fixture base name, rule id, scope the rule needs) *)
let cases =
  [
    ("df_list", "DF001", dataplane_path);
    ("df_while", "DF002", dataplane_path);
    ("df_rec", "DF003", dataplane_path);
    ("df_float", "DF004", dataplane_path);
    ("df_io", "DF005", dataplane_path);
    ("det_random", "DT001", lib_path);
    ("det_wallclock", "DT002", lib_path);
    ("det_unix", "DT003", lib_path);
    ("det_hashtbl", "DT004", lib_path);
    ("rob_catchall", "RB001", lib_path);
    ("rob_assert_false", "RB002", lib_path);
    ("pf_closure_timer", "PF001", perf_path);
  ]

let test_rule_fires () =
  List.iter
    (fun (base, id, virtual_path) ->
      let findings = lint_fixture ~virtual_path (base ^ "_pos.ml") in
      Alcotest.(check bool) (Printf.sprintf "%s fires %s" base id) true (fires id findings))
    cases

let test_rule_suppressed () =
  List.iter
    (fun (base, id, virtual_path) ->
      let findings = lint_fixture ~virtual_path (base ^ "_allow.ml") in
      Alcotest.(check bool)
        (Printf.sprintf "%s allow fixture still detects %s" base id)
        true
        (fires_suppressed id findings);
      Alcotest.(check bool)
        (Printf.sprintf "%s allow fixture has no live violation" base)
        false
        (List.exists (fun (_, sup) -> not sup) findings))
    cases

let test_sorted_fold_clean () =
  let findings = lint_fixture ~virtual_path:lib_path "det_hashtbl_sorted.ml" in
  Alcotest.(check bool) "sorted fold is not flagged" false (fires "DT004" findings);
  Alcotest.(check bool) "nor suppressed" false (fires_suppressed "DT004" findings)

let test_df_scoped_to_dataplane () =
  (* The same List call that fires on a dataplane path is fine elsewhere
     in lib/ — DF rules are scoped, not repo-wide. *)
  let findings = lint_fixture ~virtual_path:lib_path "df_list_pos.ml" in
  Alcotest.(check bool) "DF001 silent outside the dataplane" false (fires "DF001" findings)

let test_control_plane_marker () =
  let findings = lint_fixture ~virtual_path:dataplane_path "control_plane.ml" in
  let in_attach id =
    List.exists (fun (d, _) -> rule_id d = id && d.Diagnostic.line = 4) findings
  in
  Alcotest.(check bool) "no DF001 in control-plane binding" false (in_attach "DF001");
  Alcotest.(check bool) "no DF004 in control-plane binding" false (in_attach "DF004");
  Alcotest.(check bool) "unmarked binding still fires" true (fires "DF001" findings)

let test_allow_all_keyword () =
  let findings =
    lint_inline ~virtual_path:dataplane_path
      "(* bfc-lint: allow all *)\nlet f xs = List.length xs + int_of_float 1.5\n"
  in
  Alcotest.(check bool) "findings detected" true (findings <> []);
  Alcotest.(check bool) "all suppressed" true (List.for_all (fun (_, sup) -> sup) findings)

let test_seeded_list_iter_fails () =
  (* The ISSUE's acceptance check: seeding a List.iter into dataplane.ml
     must fail the lint alias. *)
  let dataplane = read_file (Filename.concat lib_dir "bfc/dataplane.ml") in
  let seeded = dataplane ^ "\nlet seeded q = List.iter ignore q\n" in
  let findings = lint_inline ~virtual_path:dataplane_path seeded in
  Alcotest.(check bool) "seeded List.iter violates" true (fires "DF001" findings)

let test_pf_scoped_and_named_handles_pass () =
  (* A closure timer outside the perf set is fine — PF rules are scoped. *)
  let findings = lint_fixture ~virtual_path:lib_path "pf_closure_timer_pos.ml" in
  Alcotest.(check bool) "PF001 silent outside the perf set" false (fires "PF001" findings);
  (* A named partial application is not a closure literal — the rare
     fallback arms in switch.ml/nic.ml arm this way and must pass. *)
  let named =
    lint_inline ~virtual_path:perf_path
      "let arm t e epoch timeout = ignore (Sim.after t.sim timeout (wd_fallback t e epoch))\n"
  in
  Alcotest.(check bool) "named fallback passes" false (fires "PF001" named);
  (* Typed posts pass, and the dataplane modules are also perf scope. *)
  let typed =
    lint_inline ~virtual_path:dataplane_path
      "let arm t timeout = Sim.post t.sim timeout ~cls:Sim.cls_switch_ctrl ~a0:0 ~a1:0\n"
  in
  Alcotest.(check bool) "typed post passes" false (fires "PF001" typed);
  let seeded =
    lint_inline ~virtual_path:dataplane_path
      "let arm t timeout = ignore (Sim.after t.sim timeout (fun () -> ignore t))\n"
  in
  Alcotest.(check bool) "dataplane closure timer violates" true (fires "PF001" seeded)

let test_seeded_random_fails () =
  let seeded = "let jitter () = Random.float 1.0\n" in
  let findings = lint_inline ~virtual_path:"lib/sim/runner.ml" seeded in
  Alcotest.(check bool) "seeded Random.float violates" true (fires "DT001" findings)

let test_repo_is_clean () =
  let report = Driver.lint_paths [ lib_dir ] in
  Alcotest.(check bool) "found the sources" true (report.Driver.files > 0);
  Alcotest.(check (list string)) "no parse failures" [] (List.map fst report.Driver.failures);
  Alcotest.(check (list string)) "no violations" []
    (List.map Diagnostic.to_human (Driver.violations report));
  Alcotest.(check int) "exit 0" 0 (Driver.exit_code report)

let test_exit_codes () =
  let finding =
    match lint_inline ~virtual_path:lib_path "let r () = Random.int 3\n" with
    | [ (d, false) ] -> d
    | _ -> Alcotest.fail "expected exactly one live finding"
  in
  let clean = { Driver.files = 1; findings = []; failures = [] } in
  let dirty = { Driver.files = 1; findings = [ (finding, false) ]; failures = [] } in
  let only_suppressed = { Driver.files = 1; findings = [ (finding, true) ]; failures = [] } in
  let broken = { Driver.files = 1; findings = []; failures = [ ("x.ml", "boom") ] } in
  Alcotest.(check int) "clean -> 0" 0 (Driver.exit_code clean);
  Alcotest.(check int) "violations -> 1" 1 (Driver.exit_code dirty);
  Alcotest.(check int) "suppressed only -> 0" 0 (Driver.exit_code only_suppressed);
  Alcotest.(check int) "failures -> 2" 2 (Driver.exit_code broken)

let test_parse_failure () =
  match Driver.lint_source ~path:"lib/broken.ml" "let = (" with
  | Ok _ -> Alcotest.fail "expected a parse failure"
  | Error msg -> Alcotest.(check bool) "failure has a reason" true (String.length msg > 0)

let test_json_render () =
  let findings =
    lint_fixture ~virtual_path:dataplane_path "df_list_pos.ml"
    @ lint_fixture ~virtual_path:lib_path "det_random_allow.ml"
  in
  let report = { Driver.files = 2; findings; failures = [] } in
  Alcotest.(check int) "fixture findings violate" 1 (Driver.exit_code report);
  let json = Driver.render_json report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json mentions %s" needle) true
        (let n = String.length needle in
         let rec scan i =
           i + n <= String.length json && (String.sub json i n = needle || scan (i + 1))
         in
         scan 0))
    [ "\"violations\""; "\"suppressed\""; "\"rule\""; "\"file\""; "\"line\"" ];
  Alcotest.(check string) "escaping" "a\\\"b\\\\c\\n" (Diagnostic.json_escape "a\"b\\c\n")

let test_rule_lookup () =
  (match Rule.find "DF001" with
  | Some r -> Alcotest.(check string) "by id" "df-list" r.Rule.name
  | None -> Alcotest.fail "DF001 not found");
  (match Rule.find "det-random" with
  | Some r -> Alcotest.(check string) "by name" "DT001" r.Rule.id
  | None -> Alcotest.fail "det-random not found");
  (match Rule.find "pf-closure-timer" with
  | Some r -> Alcotest.(check string) "pf by name" "PF001" r.Rule.id
  | None -> Alcotest.fail "pf-closure-timer not found");
  Alcotest.(check bool) "unknown" true (Rule.find "nope" = None);
  Alcotest.(check int) "twelve rules" 12 (List.length Rule.all)

let suite =
  [
    ("every rule fires on its fixture", `Quick, test_rule_fires);
    ("every rule honours allow", `Quick, test_rule_suppressed);
    ("sorted hashtbl fold passes", `Quick, test_sorted_fold_clean);
    ("df rules scoped to dataplane", `Quick, test_df_scoped_to_dataplane);
    ("control-plane marker", `Quick, test_control_plane_marker);
    ("allow all keyword", `Quick, test_allow_all_keyword);
    ("pf scope and named handles", `Quick, test_pf_scoped_and_named_handles_pass);
    ("seeded list iter violates", `Quick, test_seeded_list_iter_fails);
    ("seeded random violates", `Quick, test_seeded_random_fails);
    ("repo tree is lint-clean", `Quick, test_repo_is_clean);
    ("exit codes", `Quick, test_exit_codes);
    ("parse failure reported", `Quick, test_parse_failure);
    ("json rendering", `Quick, test_json_render);
    ("rule lookup", `Quick, test_rule_lookup);
  ]
