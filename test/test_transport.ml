(* Tests for the transport layer: congestion-control state machines, the
   NIC, Homa's receiver scheduler, and host-level behaviour on a tiny
   network. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Topology = Bfc_net.Topology
module Sched = Bfc_switch.Sched
module Dctcp = Bfc_transport.Dctcp
module Dcqcn = Bfc_transport.Dcqcn
module Hpcc = Bfc_transport.Hpcc
module Delay_cc = Bfc_transport.Delay_cc
module Homa = Bfc_transport.Homa
module Nic = Bfc_transport.Nic
module Host = Bfc_transport.Host
module Dist = Bfc_workload.Dist

let check = Alcotest.check

(* ------------------------------- DCTCP ----------------------------- *)

let test_dctcp_starts_at_line_rate () =
  let d = Dctcp.create ~mtu:1000 ~bdp:100_000 ~slow_start:false ~g:0.0625 in
  check Alcotest.int "initial window is one BDP" 100_000 (Dctcp.window d)

let test_dctcp_slow_start () =
  let d = Dctcp.create ~mtu:1000 ~bdp:100_000 ~slow_start:true ~g:0.0625 in
  check Alcotest.int "IW 10" 10_000 (Dctcp.window d);
  (* unmarked acks double the window per RTT (exponential growth) *)
  Dctcp.on_ack d ~acked:10_000 ~marked:false ~snd_una:10_000 ~snd_nxt:20_000;
  check Alcotest.int "grows by acked" 20_000 (Dctcp.window d)

let test_dctcp_additive_increase () =
  let d = Dctcp.create ~mtu:1000 ~bdp:100_000 ~slow_start:false ~g:0.0625 in
  (* one full window of unmarked acks: +1 MTU *)
  Dctcp.on_ack d ~acked:100_000 ~marked:false ~snd_una:100_000 ~snd_nxt:200_000;
  Alcotest.(check bool) "about +1 mtu" true (abs (Dctcp.window d - 101_000) < 10)

let test_dctcp_cuts_on_marks () =
  let d = Dctcp.create ~mtu:1000 ~bdp:100_000 ~slow_start:false ~g:1.0 in
  (* g=1: alpha = marked fraction immediately; all marked -> cut by half *)
  Dctcp.on_ack d ~acked:100_000 ~marked:true ~snd_una:100_000 ~snd_nxt:200_000;
  let w = Dctcp.window d in
  Alcotest.(check bool) (Printf.sprintf "halved (%d)" w) true (w < 60_000 && w > 40_000);
  Alcotest.(check (float 0.01)) "alpha converged to 1" 1.0 (Dctcp.alpha d)

let test_dctcp_timeout () =
  let d = Dctcp.create ~mtu:1000 ~bdp:100_000 ~slow_start:false ~g:0.0625 in
  Dctcp.on_timeout d;
  check Alcotest.int "collapses to 1 mtu" 1000 (Dctcp.window d)

(* ------------------------------- HPCC ------------------------------ *)

let hop ~ts ~tx ~qlen =
  { Packet.h_ts = ts; h_tx_bytes = tx; h_qlen = qlen; h_gbps = 100.0; h_link = 1 }

let test_hpcc_reduces_when_overloaded () =
  let h = Hpcc.create ~eta:0.95 ~max_stage:5 ~w_ai:80.0 ~bdp:100_000 ~base_rtt:8_000 in
  let w0 = Hpcc.window h in
  (* first ack primes the baseline *)
  Hpcc.on_ack h ~hops:[| hop ~ts:1_000 ~tx:0 ~qlen:200_000 |] ~nhops:1 ~ack_seq:1_000 ~snd_nxt:10_000;
  (* link running at full rate with a huge queue: U >> eta *)
  Hpcc.on_ack h
    ~hops:[| hop ~ts:9_000 ~tx:100_000 ~qlen:200_000 |] ~nhops:1
    ~ack_seq:2_000 ~snd_nxt:20_000;
  Alcotest.(check bool)
    (Printf.sprintf "window cut (%d -> %d)" w0 (Hpcc.window h))
    true
    (Hpcc.window h < w0 / 2);
  Alcotest.(check bool) "u measured > 1" true (Hpcc.last_u h > 1.0)

let test_hpcc_grows_when_idle () =
  let h = Hpcc.create ~eta:0.95 ~max_stage:5 ~w_ai:80.0 ~bdp:100_000 ~base_rtt:8_000 in
  Hpcc.on_ack h ~hops:[| hop ~ts:1_000 ~tx:0 ~qlen:0 |] ~nhops:1 ~ack_seq:1_000 ~snd_nxt:10_000;
  let w1 = Hpcc.window h in
  (* almost idle link: tiny tx delta, empty queue *)
  Hpcc.on_ack h ~hops:[| hop ~ts:9_000 ~tx:800 ~qlen:0 |] ~nhops:1 ~ack_seq:2_000 ~snd_nxt:20_000;
  Alcotest.(check bool) "window grew additively" true (Hpcc.window h >= w1)

(* ------------------------------- DCQCN ----------------------------- *)

let test_dcqcn_cnp_cuts_rate () =
  let sim = Sim.create () in
  let d = Dcqcn.create sim ~params:Dcqcn.default_params ~line_gbps:100.0 ~on_rate_change:ignore in
  let r0 = Dcqcn.rate d in
  Alcotest.(check (float 1e-9)) "starts at line rate" 12.5 r0;
  Dcqcn.on_cnp d;
  Alcotest.(check bool) "rate cut" true (Dcqcn.rate d < r0);
  Dcqcn.stop d

let test_dcqcn_recovers () =
  let sim = Sim.create () in
  let d = Dcqcn.create sim ~params:Dcqcn.default_params ~line_gbps:100.0 ~on_rate_change:ignore in
  Dcqcn.on_cnp d;
  Dcqcn.on_cnp d;
  let cut = Dcqcn.rate d in
  (* run the increase timers for 2 ms of virtual time *)
  ignore (Sim.run sim ~until:(Time.ms 2.0));
  Alcotest.(check bool)
    (Printf.sprintf "recovering (%.2f -> %.2f)" cut (Dcqcn.rate d))
    true
    (Dcqcn.rate d > cut);
  Dcqcn.stop d

let test_dcqcn_alpha_decays () =
  let sim = Sim.create () in
  let d = Dcqcn.create sim ~params:Dcqcn.default_params ~line_gbps:100.0 ~on_rate_change:ignore in
  Dcqcn.on_cnp d;
  let a0 = Dcqcn.alpha d in
  ignore (Sim.run sim ~until:(Time.ms 1.0));
  Alcotest.(check bool) "alpha decays without CNPs" true (Dcqcn.alpha d < a0);
  Dcqcn.stop d

(* ------------------------------ Delay CC --------------------------- *)

let test_delay_cc () =
  let d = Delay_cc.create ~mtu:1000 ~bdp:100_000 ~base_rtt:8_000 ~target_mult:2.5 in
  check Alcotest.int "starts at bdp" 100_000 (Delay_cc.window d);
  Delay_cc.on_ack d ~rtt:80_000 (* 10x base: way above the 20us target *);
  Alcotest.(check bool) "shrinks above target" true (Delay_cc.window d < 100_000);
  let w = Delay_cc.window d in
  Delay_cc.on_ack d ~rtt:8_000 (* below target *);
  Alcotest.(check bool) "grows below target" true (Delay_cc.window d > w)

(* ------------------------------- Swift ----------------------------- *)

let test_swift_additive_increase () =
  let sw = Bfc_transport.Swift.create ~mtu:1000 ~bdp:100_000 ~base_rtt:8_000 ~target_mult:1.5 ~beta:0.8 in
  let w0 = Bfc_transport.Swift.window sw in
  (* below-target RTTs grow the window *)
  for i = 1 to 100 do
    Bfc_transport.Swift.on_ack sw ~rtt:8_000 ~now:(i * 1_000)
  done;
  Alcotest.(check bool) "grew" true (Bfc_transport.Swift.window sw > w0)

let test_swift_decrease_once_per_rtt () =
  let sw = Bfc_transport.Swift.create ~mtu:1000 ~bdp:100_000 ~base_rtt:8_000 ~target_mult:1.5 ~beta:0.8 in
  (* two above-target samples in the same RTT: only one cut *)
  Bfc_transport.Swift.on_ack sw ~rtt:40_000 ~now:10_000;
  let w1 = Bfc_transport.Swift.window sw in
  Bfc_transport.Swift.on_ack sw ~rtt:40_000 ~now:11_000;
  check Alcotest.int "second sample in same rtt ignored" w1 (Bfc_transport.Swift.window sw);
  Bfc_transport.Swift.on_ack sw ~rtt:40_000 ~now:80_000;
  Alcotest.(check bool) "later cut applies" true (Bfc_transport.Swift.window sw < w1);
  Alcotest.(check bool) "cut happened at all" true (w1 < 100_000)

(* ------------------------------ Timely ----------------------------- *)

let test_timely_low_rtt_increases () =
  let tm = Bfc_transport.Timely.create ~line_gbps:100.0 ~base_rtt:8_000 ~t_low:10_000 ~t_high:16_000 in
  (* force the rate down first so increase is observable *)
  Bfc_transport.Timely.on_ack tm ~rtt:40_000;
  let r1 = Bfc_transport.Timely.rate tm in
  Bfc_transport.Timely.on_ack tm ~rtt:9_000;
  Alcotest.(check bool) "rate rose below t_low" true (Bfc_transport.Timely.rate tm > r1)

let test_timely_high_rtt_decreases () =
  let tm = Bfc_transport.Timely.create ~line_gbps:100.0 ~base_rtt:8_000 ~t_low:10_000 ~t_high:16_000 in
  let r0 = Bfc_transport.Timely.rate tm in
  Bfc_transport.Timely.on_ack tm ~rtt:50_000;
  Alcotest.(check bool) "cut above t_high" true (Bfc_transport.Timely.rate tm < r0)

let test_timely_gradient_region () =
  let tm = Bfc_transport.Timely.create ~line_gbps:100.0 ~base_rtt:8_000 ~t_low:10_000 ~t_high:100_000 in
  (* rising RTTs between t_low and t_high: positive gradient, rate falls *)
  Bfc_transport.Timely.on_ack tm ~rtt:20_000;
  Bfc_transport.Timely.on_ack tm ~rtt:30_000;
  Bfc_transport.Timely.on_ack tm ~rtt:45_000;
  let falling = Bfc_transport.Timely.rate tm in
  Alcotest.(check bool) "positive gradient cuts" true (falling < 12.5)

(* ------------------------------- Homa ------------------------------ *)

let test_homa_params () =
  let p = Homa.params_for ~dist:Dist.google ~total_prios:32 ~rtt_bytes:100_000 ~spray:true in
  Alcotest.(check bool) "unsched prios in range" true
    (p.Homa.unsched_prios >= 1 && p.Homa.unsched_prios < 32);
  check Alcotest.int "overcommit = rest" (32 - p.Homa.unsched_prios) p.Homa.overcommit;
  (* cutoffs ascending *)
  let asc = ref true in
  Array.iteri
    (fun i c -> if i > 0 && c < p.Homa.cutoffs.(i - 1) then asc := false)
    p.Homa.cutoffs;
  Alcotest.(check bool) "cutoffs ascending" true !asc;
  (* smaller sizes get better priority *)
  Alcotest.(check bool) "tiny <= huge prio" true
    (Homa.unsched_prio p ~size:100 <= Homa.unsched_prio p ~size:3_000_000)

let test_homa_receiver_grants_srpt () =
  let p = Homa.params_for ~dist:Dist.google ~total_prios:8 ~rtt_bytes:10_000 ~spray:true in
  let r = Homa.Receiver.create p in
  let big = Flow.make ~id:1 ~src:0 ~dst:9 ~size:1_000_000 ~arrival:0 () in
  let small = Flow.make ~id:2 ~src:1 ~dst:9 ~size:50_000 ~arrival:0 () in
  ignore (Homa.Receiver.on_data r ~flow:big ~covered:10_000);
  let grants = Homa.Receiver.on_data r ~flow:small ~covered:10_000 in
  (* the small message must be granted, and at a better (lower) priority
     than the big one if both are granted *)
  let find f = List.find_opt (fun g -> g.Homa.g_flow == f) grants in
  (match find small with
  | Some g ->
    Alcotest.(check bool) "grant beyond covered" true (g.Homa.g_offset > 10_000);
    (match find big with
    | Some gb -> Alcotest.(check bool) "srpt priority order" true (g.Homa.g_prio <= gb.Homa.g_prio)
    | None -> ())
  | None -> Alcotest.fail "small message not granted");
  check Alcotest.int "two active messages" 2 (Homa.Receiver.active r)

let test_homa_receiver_completion_removes () =
  let p = Homa.params_for ~dist:Dist.google ~total_prios:8 ~rtt_bytes:10_000 ~spray:true in
  let r = Homa.Receiver.create p in
  let f = Flow.make ~id:3 ~src:0 ~dst:9 ~size:5_000 ~arrival:0 () in
  ignore (Homa.Receiver.on_data r ~flow:f ~covered:5_000);
  check Alcotest.int "completed message dropped" 0 (Homa.Receiver.active r)

let test_homa_overcommit_limit () =
  let p = Homa.params_for ~dist:Dist.google ~total_prios:4 ~rtt_bytes:10_000 ~spray:true in
  let r = Homa.Receiver.create p in
  (* create more messages than the overcommit level; the grant list per
     round never exceeds overcommit *)
  for i = 0 to 9 do
    let f = Flow.make ~id:(100 + i) ~src:i ~dst:9 ~size:500_000 ~arrival:0 () in
    let grants = Homa.Receiver.on_data r ~flow:f ~covered:1_000 in
    Alcotest.(check bool) "bounded grants" true (List.length grants <= p.Homa.overcommit)
  done

(* -------------------------------- NIC ------------------------------ *)

let mk_nic ?(policy = Sched.Drr) ?(respect_pause = true) () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let h = Topology.Builder.add_host b ~name:"h" in
  let z = Topology.Builder.add_host b ~name:"z" in
  Topology.Builder.link b h z ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  let received = ref [] in
  (Topology.node t z).Bfc_net.Node.handler <- (fun ~in_port:_ pkt -> received := pkt :: !received);
  (Topology.node t h).Bfc_net.Node.handler <- (fun ~in_port:_ _ -> ());
  let nic =
    Nic.create ~sim ~port:(Topology.ports t h).(0) ~n_queues:8 ~policy ~respect_pause ()
  in
  (sim, nic, received)

let data_pkt ?(payload = 1000) flow_id =
  let f = Flow.make ~id:flow_id ~src:0 ~dst:1 ~size:100_000 ~arrival:0 () in
  Packet.data ~flow:f ~seq:0 ~payload ()

let test_nic_transmits () =
  let sim, nic, received = mk_nic () in
  let q = Nic.alloc_queue nic in
  Nic.submit nic ~queue:q (data_pkt 1);
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "delivered" 1 (List.length !received);
  check Alcotest.int "stamps upstream_q" q (List.hd !received).Packet.upstream_q

let test_nic_alloc_distinct () =
  let _, nic, _ = mk_nic () in
  let a = Nic.alloc_queue nic in
  let b = Nic.alloc_queue nic in
  Alcotest.(check bool) "distinct data queues" true (a <> b && a >= 1 && b >= 1);
  Nic.release_queue nic a;
  let c = Nic.alloc_queue nic in
  Alcotest.(check bool) "freed queue reusable eventually" true (c >= 1)

let test_nic_pause_holds_queue () =
  let sim, nic, received = mk_nic () in
  let q = Nic.alloc_queue nic in
  (* pause queue q via a Pause ctrl packet *)
  let pause = Packet.make Packet.Pause ~src:(-1) ~dst:(-1) ~size:64 () in
  pause.Packet.ctrl_a <- q;
  Nic.on_ctrl nic pause;
  Nic.submit nic ~queue:q (data_pkt 1);
  ignore (Sim.run sim ~until:(Time.us 100.0));
  check Alcotest.int "held" 0 (List.length !received);
  Alcotest.(check bool) "queue marked paused" true (Nic.queue_paused nic ~queue:q);
  let resume = Packet.make Packet.Resume ~src:(-1) ~dst:(-1) ~size:64 () in
  resume.Packet.ctrl_a <- q;
  Nic.on_ctrl nic resume;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "released" 1 (List.length !received)

let test_nic_ignores_pause_when_configured () =
  let sim, nic, received = mk_nic ~respect_pause:false () in
  let q = Nic.alloc_queue nic in
  let pause = Packet.make Packet.Pause ~src:(-1) ~dst:(-1) ~size:64 () in
  pause.Packet.ctrl_a <- q;
  Nic.on_ctrl nic pause;
  Nic.submit nic ~queue:q (data_pkt 1);
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "BFC-NIC variant ships anyway" 1 (List.length !received)

let test_nic_pfc_pauses_everything () =
  let sim, nic, received = mk_nic () in
  let q = Nic.alloc_queue nic in
  let pfc = Packet.make Packet.Pfc ~src:(-1) ~dst:(-1) ~size:64 () in
  pfc.Packet.ctrl_b <- 1;
  Nic.on_ctrl nic pfc;
  Nic.submit nic ~queue:q (data_pkt 1);
  Nic.submit_ctrl nic (Packet.make Packet.Ack ~src:0 ~dst:1 ~size:64 ());
  ignore (Sim.run sim ~until:(Time.us 100.0));
  check Alcotest.int "everything held" 0 (List.length !received);
  let resume = Packet.make Packet.Pfc ~src:(-1) ~dst:(-1) ~size:64 () in
  resume.Packet.ctrl_b <- 0;
  Nic.on_ctrl nic resume;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "both flushed" 2 (List.length !received)

let test_nic_ctrl_queue_priority_under_strict () =
  let sim, nic, received = mk_nic ~policy:Sched.Prio_strict () in
  (* stuff a data packet then an ack; under strict priority queue 0 (ctrl)
     wins whenever both are waiting *)
  Nic.submit nic ~queue:5 (data_pkt 1);
  Nic.submit nic ~queue:5 (data_pkt 2);
  Nic.submit_ctrl nic (Packet.make Packet.Ack ~src:0 ~dst:1 ~size:64 ());
  ignore (Sim.run_until_idle sim);
  match List.rev !received with
  | [ first; second; third ] ->
    Alcotest.(check bool) "data was serializing first" true (first.Packet.kind = Packet.Data);
    Alcotest.(check bool) "ack preempts second slot" true (second.Packet.kind = Packet.Ack);
    Alcotest.(check bool) "then data" true (third.Packet.kind = Packet.Data)
  | _ -> Alcotest.fail "expected 3 deliveries"

(* --------------------------- Host end-to-end ----------------------- *)

(* Two hosts connected through one BFC switch: a flow must complete and
   the receiver must have sent acks. *)
let test_host_flow_completes () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let cfg = { Bfc_switch.Switch.default_config with Bfc_switch.Switch.queues_per_port = 8 } in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Bfc_switch.Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  let sw =
    Bfc_switch.Switch.create ~sim
      ~node:(Topology.node t st.Topology.st_switch)
      ~ports:(Topology.ports t st.Topology.st_switch)
      ~config:cfg ~route ()
  in
  ignore
    (Bfc_core.Dataplane.attach sw
       { Bfc_core.Dataplane.default_config with Bfc_core.Dataplane.max_upstream_q = 16 });
  let hostcfg = { Host.default_config with Host.nic_queues = 8; bdp = 25_000 } in
  let mk i = Host.create ~sim ~node:(Topology.node t i) ~port:(Topology.ports t i).(0) ~config:hostcfg () in
  let h0 = mk st.Topology.st_senders.(0) in
  let _h1 = mk st.Topology.st_senders.(1) in
  let hr = mk st.Topology.st_receiver in
  let completed = ref None in
  Host.on_complete hr (fun f -> completed := Some f.Flow.id);
  let f =
    Flow.make ~id:500 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:50_000
      ~arrival:0 ()
  in
  Host.start_flow h0 f;
  ignore (Sim.run sim ~until:(Time.ms 5.0));
  check Alcotest.(option int) "completed at receiver" (Some 500) !completed;
  check Alcotest.int "all bytes delivered in order" 50_000 f.Flow.delivered;
  Alcotest.(check bool) "fct recorded" true (Flow.fct f > 0);
  check Alcotest.int "sender accounted payload" 50_000 (Host.bytes_sent h0)

let suite =
  [
    ("dctcp line-rate start", `Quick, test_dctcp_starts_at_line_rate);
    ("dctcp slow start", `Quick, test_dctcp_slow_start);
    ("dctcp additive increase", `Quick, test_dctcp_additive_increase);
    ("dctcp cuts on marks", `Quick, test_dctcp_cuts_on_marks);
    ("dctcp timeout", `Quick, test_dctcp_timeout);
    ("hpcc reduces when overloaded", `Quick, test_hpcc_reduces_when_overloaded);
    ("hpcc grows when idle", `Quick, test_hpcc_grows_when_idle);
    ("dcqcn cnp cuts", `Quick, test_dcqcn_cnp_cuts_rate);
    ("dcqcn recovers", `Quick, test_dcqcn_recovers);
    ("dcqcn alpha decays", `Quick, test_dcqcn_alpha_decays);
    ("delay cc", `Quick, test_delay_cc);
    ("swift additive increase", `Quick, test_swift_additive_increase);
    ("swift once-per-rtt cut", `Quick, test_swift_decrease_once_per_rtt);
    ("timely low rtt", `Quick, test_timely_low_rtt_increases);
    ("timely high rtt", `Quick, test_timely_high_rtt_decreases);
    ("timely gradient", `Quick, test_timely_gradient_region);
    ("homa params", `Quick, test_homa_params);
    ("homa receiver srpt", `Quick, test_homa_receiver_grants_srpt);
    ("homa completion", `Quick, test_homa_receiver_completion_removes);
    ("homa overcommit", `Quick, test_homa_overcommit_limit);
    ("nic transmits", `Quick, test_nic_transmits);
    ("nic alloc distinct", `Quick, test_nic_alloc_distinct);
    ("nic pause holds", `Quick, test_nic_pause_holds_queue);
    ("nic BFC-NIC variant", `Quick, test_nic_ignores_pause_when_configured);
    ("nic pfc", `Quick, test_nic_pfc_pauses_everything);
    ("nic strict ctrl priority", `Quick, test_nic_ctrl_queue_priority_under_strict);
    ("host flow completes", `Quick, test_host_flow_completes);
  ]
