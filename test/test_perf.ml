(* Regression tests for the performance-engineering layer (PRs 3 and 5):
   the non-allocating heap API, per-sim packet uids, the reusable ticker
   handle, the packet pool's full-field reset, determinism of the
   domain-parallel sweep runner, and the heap-vs-timing-wheel scheduler
   differential (identical event order and experiment metrics). *)

open Alcotest
module Heap = Bfc_util.Heap
module Wheel = Bfc_util.Wheel
module Rng = Bfc_util.Rng
module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Packet = Bfc_net.Packet
module Exp_common = Bfc_sim.Exp_common
module Experiments = Bfc_sim.Experiments
module Pool = Bfc_sim.Pool

(* ------------------------------- heap ------------------------------ *)

let test_heap_pop_min_exn_empty () =
  let h = Heap.create () in
  check_raises "pop on empty" Heap.Empty (fun () -> ignore (Heap.pop_min_exn h));
  check_raises "peek on empty" Heap.Empty (fun () -> ignore (Heap.peek_priority h))

let test_heap_duplicate_priorities_fifo () =
  let h = Heap.create () in
  Heap.push h ~priority:5 "a";
  Heap.push h ~priority:5 "b";
  Heap.push h ~priority:1 "first";
  Heap.push h ~priority:5 "c";
  check string "lowest prio first" "first" (Heap.pop_min_exn h);
  check int "peek ties" 5 (Heap.peek_priority h);
  check string "tie 1 in push order" "a" (Heap.pop_min_exn h);
  check string "tie 2 in push order" "b" (Heap.pop_min_exn h);
  check string "tie 3 in push order" "c" (Heap.pop_min_exn h);
  check bool "drained" true (Heap.is_empty h)

let test_heap_clear_reuses_capacity () =
  let h = Heap.create () in
  for i = 0 to 999 do
    Heap.push h ~priority:i i
  done;
  let cap = Heap.capacity h in
  check bool "grew past initial" true (cap >= 1000);
  Heap.clear h;
  check int "empty after clear" 0 (Heap.length h);
  check int "backing array kept" cap (Heap.capacity h);
  for i = 0 to 999 do
    Heap.push h ~priority:(1000 - i) i
  done;
  check int "no regrowth after clear" cap (Heap.capacity h);
  check int "order still correct" 999 (Heap.pop_min_exn h)

(* --------------------------- per-sim uids -------------------------- *)

let test_uid_sequences_identical_across_sims () =
  let uids sim =
    List.init 50 (fun i ->
        let p =
          Packet.make ~sim Packet.Data ~src:0 ~dst:1 ~size:1000 ~payload:i ()
        in
        p.Packet.uid)
  in
  let a = uids (Sim.create ()) in
  let b = uids (Sim.create ()) in
  check (list int) "fresh sims give identical uid sequences" a b;
  check int "uids start at 0" 0 (List.hd a)

(* ------------------------------ ticker ----------------------------- *)

let test_ticker_no_event_leak () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let tk = Sim.every sim ~period:(Time.us 1.0) (fun () -> incr fired) in
  (* a running ticker keeps exactly one armed handle in the heap *)
  ignore (Sim.run sim ~until:(Time.us 10.5));
  check int "fired each period" 10 !fired;
  check int "one pending event while running" 1 (Sim.pending_events sim);
  Sim.stop_ticker tk;
  check int "stop cancels the armed handle" 0 (Sim.pending_events sim);
  ignore (Sim.run sim ~until:(Time.us 30.0));
  check int "no fires after stop" 10 !fired

(* ---------------------------- packet pool -------------------------- *)

let test_pool_reset_all_fields () =
  let sim = Sim.create () in
  let pool = Packet.Pool.create ~sim in
  let p =
    Packet.Pool.acquire pool Packet.Data ~src:3 ~dst:4 ~size:1500 ~payload:1400 ~seq:7
      ~prio:2 ()
  in
  (* dirty every mutable field a switch/host can touch *)
  p.Packet.ecn <- true;
  p.Packet.ecn_echo <- true;
  p.Packet.bp_in_port <- 9;
  p.Packet.bp_upq <- 11;
  p.Packet.bp_counted <- true;
  p.Packet.bp_sampled <- false;
  p.Packet.path_hint <- 5;
  p.Packet.ints <- [| 1; 2; 3 |];
  Packet.add_int_hop p ~ts:10 ~tx_bytes:100 ~qlen:200 ~gbps:100.0 ~link:1;
  Packet.add_int_hop p ~ts:20 ~tx_bytes:300 ~qlen:400 ~gbps:100.0 ~link:2;
  check int "hops recorded" 2 (Packet.int_hop_count p);
  Packet.Pool.release pool p;
  let q = Packet.Pool.acquire pool Packet.Ack ~src:1 ~dst:0 ~size:64 () in
  check bool "recycled the same record" true (p == q);
  check bool "ecn reset" false q.Packet.ecn;
  check bool "ecn_echo reset" false q.Packet.ecn_echo;
  check int "bp_in_port reset" (-1) q.Packet.bp_in_port;
  check int "bp_upq reset" (-1) q.Packet.bp_upq;
  check bool "bp_counted reset" false q.Packet.bp_counted;
  check bool "bp_sampled reset" true q.Packet.bp_sampled;
  check int "path_hint reset" (-1) q.Packet.path_hint;
  check int "ints cleared" 0 (Array.length q.Packet.ints);
  check int "int_hops cursor reset" 0 (Packet.int_hop_count q);
  check int "payload reset" 0 q.Packet.payload;
  check int "seq reset" 0 q.Packet.seq;
  check int "prio reset" 0 q.Packet.prio;
  check bool "fresh uid on reuse" true (q.Packet.uid <> p.Packet.uid || q.Packet.uid >= 0)

let test_pool_double_release_rejected () =
  let sim = Sim.create () in
  let pool = Packet.Pool.create ~sim in
  let p = Packet.Pool.acquire pool Packet.Data ~src:0 ~dst:1 ~size:100 () in
  Packet.Pool.release pool p;
  check_raises "double release"
    (Invalid_argument "Packet.Pool.release: double release") (fun () ->
      Packet.Pool.release pool p)

(* -------------------------- parallel sweeps ------------------------ *)

let test_pool_run_preserves_order () =
  let tasks = List.init 40 (fun i -> fun () -> i * i) in
  check (list int) "jobs=4 matches sequential" (Pool.run ~jobs:1 tasks)
    (Pool.run ~jobs:4 tasks)

let test_pool_run_error_in_task_order () =
  let boom i = Failure (Printf.sprintf "task %d" i) in
  let tasks = List.init 8 (fun i -> fun () -> if i >= 5 then raise (boom i) else i) in
  let index_of = function
    | Pool.Task_error { index; _ } -> index
    | _ -> -1
  in
  let got j =
    match Pool.run ~jobs:j tasks with
    | _ -> -1
    | exception e -> index_of e
  in
  check int "sequential reports first failing task" 5 (got 1);
  check int "parallel reports the same task" 5 (got 4)

let test_run_parallel_rows_identical () =
  (* a smoke-profile multi-point experiment, sequential vs 4 domains: the
     table rows must be byte-identical *)
  let target =
    match Experiments.find "fig12" with Some t -> t | None -> fail "fig12 missing"
  in
  let tables jobs =
    let prev = Pool.default_jobs () in
    Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Pool.set_default_jobs prev)
      (fun () -> target.Experiments.t_run Exp_common.Smoke)
  in
  let flat ts =
    List.concat_map
      (fun t -> (t.Exp_common.title :: t.Exp_common.header) :: t.Exp_common.rows)
      ts
  in
  let seq = flat (tables 1) in
  let par = flat (tables 4) in
  check (list (list string)) "rows byte-identical at jobs=4" seq par

(* ---------------------- scheduler differential --------------------- *)

let with_sched sched f =
  let prev = Sim.default_sched () in
  Sim.set_default_sched sched;
  Fun.protect ~finally:(fun () -> Sim.set_default_sched prev) f

(* A random Sim-level schedule with one-shots, cancels, reusable-handle
   rearm chains and tickers must fire in the same order under both
   backends. This drives the wheel through the Sim dispatch (tombstone
   pops, garbage purge, every-tick re-push), not just the raw structure. *)
let sim_fire_trace sched seed =
  with_sched sched (fun () ->
      let sim = Sim.create () in
      check bool "backend selected" true (Sim.sched sim = sched);
      let rng = Rng.create seed in
      let trace = ref [] in
      let record tag id = trace := ((tag : int), (id : int), Sim.now sim) :: !trace in
      let cancellable = ref [] in
      for i = 0 to 399 do
        let t = Rng.int rng 100_000 in
        let h = Sim.at sim t (fun () -> record 0 i) in
        if Rng.bernoulli rng 0.3 then cancellable := h :: !cancellable
      done;
      (* rearm chains: one reusable handle per chain, re-armed at a
         random horizon from inside its own callback (the Port pattern) *)
      for i = 0 to 9 do
        let hops = ref 0 in
        let href = ref None in
        let h =
          Sim.make_handle sim (fun () ->
              record 1 i;
              incr hops;
              if !hops < 50 then
                match !href with
                | Some h -> Sim.rearm h ~at:(Sim.now sim + 1 + Rng.int rng 5_000)
                | None -> ())
        in
        href := Some h;
        Sim.rearm h ~at:(1 + Rng.int rng 1_000)
      done;
      let tks = List.init 5 (fun i -> Sim.every sim ~period:(7_001 + i) (fun () -> record 2 i)) in
      (* cancel a random subset mid-run to leave tombstones behind *)
      ignore
        (Sim.at sim 50_000 (fun () ->
             List.iter Sim.cancel !cancellable;
             List.iter Sim.stop_ticker tks));
      ignore (Sim.run_until_idle sim);
      List.rev !trace)

let test_sim_differential_random_schedule () =
  for seed = 1 to 5 do
    let heap = sim_fire_trace Sim.Heap seed in
    let wheel = sim_fire_trace Sim.Wheel seed in
    check int (Printf.sprintf "trace length (seed %d)" seed) (List.length heap)
      (List.length wheel);
    check bool (Printf.sprintf "identical fire order (seed %d)" seed) true (heap = wheel)
  done

(* End-to-end: the quick experiment suite produces byte-identical metric
   rows whichever scheduler backend runs it. *)
let test_experiments_identical_across_scheds () =
  let flat ts =
    List.concat_map
      (fun t -> (t.Exp_common.title :: t.Exp_common.header) :: t.Exp_common.rows)
      ts
  in
  List.iter
    (fun name ->
      let target =
        match Experiments.find name with Some t -> t | None -> fail (name ^ " missing")
      in
      let rows sched = flat (with_sched sched (fun () -> target.Experiments.t_run Exp_common.Smoke)) in
      check
        (list (list string))
        (name ^ " rows byte-identical across backends")
        (rows Sim.Heap) (rows Sim.Wheel))
    [ "fig7"; "sticky" ]

let suite =
  [
    test_case "heap pop_min_exn empty" `Quick test_heap_pop_min_exn_empty;
    test_case "heap duplicate priorities fifo" `Quick test_heap_duplicate_priorities_fifo;
    test_case "heap clear reuses capacity" `Quick test_heap_clear_reuses_capacity;
    test_case "per-sim uid determinism" `Quick test_uid_sequences_identical_across_sims;
    test_case "ticker no event leak" `Quick test_ticker_no_event_leak;
    test_case "packet pool resets all fields" `Quick test_pool_reset_all_fields;
    test_case "packet pool double release" `Quick test_pool_double_release_rejected;
    test_case "domain pool preserves order" `Quick test_pool_run_preserves_order;
    test_case "domain pool error in task order" `Quick test_pool_run_error_in_task_order;
    test_case "run_parallel byte-identical rows" `Slow test_run_parallel_rows_identical;
    test_case "sim differential: random schedule" `Quick test_sim_differential_random_schedule;
    test_case "sim differential: experiment rows" `Slow test_experiments_identical_across_scheds;
  ]
