(* Regression tests for the performance-engineering layer (PR 3): the
   non-allocating heap API, per-sim packet uids, the reusable ticker
   handle, the packet pool's full-field reset, and determinism of the
   domain-parallel sweep runner. *)

open Alcotest
module Heap = Bfc_util.Heap
module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Packet = Bfc_net.Packet
module Exp_common = Bfc_sim.Exp_common
module Experiments = Bfc_sim.Experiments
module Pool = Bfc_sim.Pool

(* ------------------------------- heap ------------------------------ *)

let test_heap_pop_min_exn_empty () =
  let h = Heap.create () in
  check_raises "pop on empty" Heap.Empty (fun () -> ignore (Heap.pop_min_exn h));
  check_raises "peek on empty" Heap.Empty (fun () -> ignore (Heap.peek_priority h))

let test_heap_duplicate_priorities_fifo () =
  let h = Heap.create () in
  Heap.push h ~priority:5 "a";
  Heap.push h ~priority:5 "b";
  Heap.push h ~priority:1 "first";
  Heap.push h ~priority:5 "c";
  check string "lowest prio first" "first" (Heap.pop_min_exn h);
  check int "peek ties" 5 (Heap.peek_priority h);
  check string "tie 1 in push order" "a" (Heap.pop_min_exn h);
  check string "tie 2 in push order" "b" (Heap.pop_min_exn h);
  check string "tie 3 in push order" "c" (Heap.pop_min_exn h);
  check bool "drained" true (Heap.is_empty h)

let test_heap_clear_reuses_capacity () =
  let h = Heap.create () in
  for i = 0 to 999 do
    Heap.push h ~priority:i i
  done;
  let cap = Heap.capacity h in
  check bool "grew past initial" true (cap >= 1000);
  Heap.clear h;
  check int "empty after clear" 0 (Heap.length h);
  check int "backing array kept" cap (Heap.capacity h);
  for i = 0 to 999 do
    Heap.push h ~priority:(1000 - i) i
  done;
  check int "no regrowth after clear" cap (Heap.capacity h);
  check int "order still correct" 999 (Heap.pop_min_exn h)

(* --------------------------- per-sim uids -------------------------- *)

let test_uid_sequences_identical_across_sims () =
  let uids sim =
    List.init 50 (fun i ->
        let p =
          Packet.make ~sim Packet.Data ~src:0 ~dst:1 ~size:1000 ~payload:i ()
        in
        p.Packet.uid)
  in
  let a = uids (Sim.create ()) in
  let b = uids (Sim.create ()) in
  check (list int) "fresh sims give identical uid sequences" a b;
  check int "uids start at 0" 0 (List.hd a)

(* ------------------------------ ticker ----------------------------- *)

let test_ticker_no_event_leak () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let tk = Sim.every sim ~period:(Time.us 1.0) (fun () -> incr fired) in
  (* a running ticker keeps exactly one armed handle in the heap *)
  ignore (Sim.run sim ~until:(Time.us 10.5));
  check int "fired each period" 10 !fired;
  check int "one pending event while running" 1 (Sim.pending_events sim);
  Sim.stop_ticker tk;
  check int "stop cancels the armed handle" 0 (Sim.pending_events sim);
  ignore (Sim.run sim ~until:(Time.us 30.0));
  check int "no fires after stop" 10 !fired

(* ---------------------------- packet pool -------------------------- *)

let test_pool_reset_all_fields () =
  let sim = Sim.create () in
  let pool = Packet.Pool.create ~sim in
  let p =
    Packet.Pool.acquire pool Packet.Data ~src:3 ~dst:4 ~size:1500 ~payload:1400 ~seq:7
      ~prio:2 ()
  in
  (* dirty every mutable field a switch/host can touch *)
  p.Packet.ecn <- true;
  p.Packet.ecn_echo <- true;
  p.Packet.bp_in_port <- 9;
  p.Packet.bp_upq <- 11;
  p.Packet.bp_counted <- true;
  p.Packet.bp_sampled <- false;
  p.Packet.path_hint <- 5;
  p.Packet.ints <- [| 1; 2; 3 |];
  Packet.add_int_hop p ~ts:10 ~tx_bytes:100 ~qlen:200 ~gbps:100.0 ~link:1;
  Packet.add_int_hop p ~ts:20 ~tx_bytes:300 ~qlen:400 ~gbps:100.0 ~link:2;
  check int "hops recorded" 2 (Packet.int_hop_count p);
  Packet.Pool.release pool p;
  let q = Packet.Pool.acquire pool Packet.Ack ~src:1 ~dst:0 ~size:64 () in
  check bool "recycled the same record" true (p == q);
  check bool "ecn reset" false q.Packet.ecn;
  check bool "ecn_echo reset" false q.Packet.ecn_echo;
  check int "bp_in_port reset" (-1) q.Packet.bp_in_port;
  check int "bp_upq reset" (-1) q.Packet.bp_upq;
  check bool "bp_counted reset" false q.Packet.bp_counted;
  check bool "bp_sampled reset" true q.Packet.bp_sampled;
  check int "path_hint reset" (-1) q.Packet.path_hint;
  check int "ints cleared" 0 (Array.length q.Packet.ints);
  check int "int_hops cursor reset" 0 (Packet.int_hop_count q);
  check int "payload reset" 0 q.Packet.payload;
  check int "seq reset" 0 q.Packet.seq;
  check int "prio reset" 0 q.Packet.prio;
  check bool "fresh uid on reuse" true (q.Packet.uid <> p.Packet.uid || q.Packet.uid >= 0)

let test_pool_double_release_rejected () =
  let sim = Sim.create () in
  let pool = Packet.Pool.create ~sim in
  let p = Packet.Pool.acquire pool Packet.Data ~src:0 ~dst:1 ~size:100 () in
  Packet.Pool.release pool p;
  check_raises "double release"
    (Invalid_argument "Packet.Pool.release: double release") (fun () ->
      Packet.Pool.release pool p)

(* -------------------------- parallel sweeps ------------------------ *)

let test_pool_run_preserves_order () =
  let tasks = List.init 40 (fun i -> fun () -> i * i) in
  check (list int) "jobs=4 matches sequential" (Pool.run ~jobs:1 tasks)
    (Pool.run ~jobs:4 tasks)

let test_pool_run_error_in_task_order () =
  let boom i = Failure (Printf.sprintf "task %d" i) in
  let tasks = List.init 8 (fun i -> fun () -> if i >= 5 then raise (boom i) else i) in
  let index_of = function
    | Pool.Task_error { index; _ } -> index
    | _ -> -1
  in
  let got j =
    match Pool.run ~jobs:j tasks with
    | _ -> -1
    | exception e -> index_of e
  in
  check int "sequential reports first failing task" 5 (got 1);
  check int "parallel reports the same task" 5 (got 4)

let test_run_parallel_rows_identical () =
  (* a smoke-profile multi-point experiment, sequential vs 4 domains: the
     table rows must be byte-identical *)
  let target =
    match Experiments.find "fig12" with Some t -> t | None -> fail "fig12 missing"
  in
  let tables jobs =
    let prev = Pool.default_jobs () in
    Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Pool.set_default_jobs prev)
      (fun () -> target.Experiments.t_run Exp_common.Smoke)
  in
  let flat ts =
    List.concat_map
      (fun t -> (t.Exp_common.title :: t.Exp_common.header) :: t.Exp_common.rows)
      ts
  in
  let seq = flat (tables 1) in
  let par = flat (tables 4) in
  check (list (list string)) "rows byte-identical at jobs=4" seq par

let suite =
  [
    test_case "heap pop_min_exn empty" `Quick test_heap_pop_min_exn_empty;
    test_case "heap duplicate priorities fifo" `Quick test_heap_duplicate_priorities_fifo;
    test_case "heap clear reuses capacity" `Quick test_heap_clear_reuses_capacity;
    test_case "per-sim uid determinism" `Quick test_uid_sequences_identical_across_sims;
    test_case "ticker no event leak" `Quick test_ticker_no_event_leak;
    test_case "packet pool resets all fields" `Quick test_pool_reset_all_fields;
    test_case "packet pool double release" `Quick test_pool_double_release_rejected;
    test_case "domain pool preserves order" `Quick test_pool_run_preserves_order;
    test_case "domain pool error in task order" `Quick test_pool_run_error_in_task_order;
    test_case "run_parallel byte-identical rows" `Slow test_run_parallel_rows_identical;
  ]
