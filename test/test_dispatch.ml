(* Typed-dispatch differential suite (PR 10).

   The golden fixtures under fixtures/dispatch/ were generated from the
   PR-9 closure-based engine (set BFC_DISPATCH_FIXGEN=1 and
   BFC_DISPATCH_FIXDIR=<abs path> to regenerate).  Every run of the
   typed-dispatch engine — wheel and heap backends, sequential and
   [--shards 2] — must reproduce them byte for byte: FCT rows, per-flow
   records, injected/completed counters, and buffer p99.  This is the
   same proof shape PR 5 (wheel vs heap) and PR 8 (sharded vs
   sequential) used, anchored against the previous engine generation
   instead of a sibling configuration. *)

open Alcotest
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Exp_common = Bfc_sim.Exp_common
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner

let fixture_dir =
  if Sys.file_exists "fixtures/dispatch" then "fixtures/dispatch"
  else "test/fixtures/dispatch"

(* ------------------------- canonical rendering --------------------- *)

(* Everything the acceptance criteria name, as one stable text blob.
   Executed-event counts are deliberately absent: sequential and sharded
   runs agree on outputs, not on per-shard bookkeeping events (the
   equal-event-count assertion lives in [bench --macro]). *)
let render (r : Exp_common.std_result) =
  let b = Buffer.create 4096 in
  Printf.bprintf b "injected %d\n" (Runner.injected r.Exp_common.env);
  Printf.bprintf b "completed %d\n" (Runner.completed r.Exp_common.env);
  List.iter
    (fun f ->
      Printf.bprintf b "flow %d %d %d %d %d %d %d\n" f.Flow.id f.Flow.src
        f.Flow.dst f.Flow.size f.Flow.delivered f.Flow.finish f.Flow.first_byte)
    r.Exp_common.flows;
  List.iter
    (fun row -> Printf.bprintf b "fct %s\n" (String.concat " " row))
    (Exp_common.fct_rows r);
  Printf.bprintf b "buffer_p99 %.6f\n" (Exp_common.buffer_p99 r);
  Buffer.contents b

(* ----------------------------- workloads --------------------------- *)

let workloads =
  [
    ( "fig7",
      fun () ->
        {
          (Exp_common.std Exp_common.Smoke (Scheme.Bfc Scheme.bfc_default)) with
          Exp_common.sp_seed = 7;
        } );
    ( "incast",
      fun () ->
        {
          (Exp_common.std Exp_common.Smoke (Scheme.Bfc Scheme.bfc_default)) with
          Exp_common.sp_incast = Some Exp_common.default_incast;
          sp_seed = 3;
        } );
    ( "credit",
      fun () ->
        {
          (Exp_common.std Exp_common.Smoke Scheme.expresspass) with
          Exp_common.sp_seed = 5;
        } );
  ]

let with_sched sched f =
  let prev = Sim.default_sched () in
  Sim.set_default_sched sched;
  Fun.protect ~finally:(fun () -> Sim.set_default_sched prev) f

let run_leg sched shards setup =
  with_sched sched (fun () ->
      if shards = 1 then Exp_common.run_std_seq setup
      else Exp_common.run_std_sharded setup ~shards)

let legs =
  [
    ("wheel", Sim.Wheel, 1);
    ("heap", Sim.Heap, 1);
    ("wheel-shards2", Sim.Wheel, 2);
    ("heap-shards2", Sim.Heap, 2);
  ]

(* --------------------------- fixture plumbing ---------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let fixgen = Sys.getenv_opt "BFC_DISPATCH_FIXGEN" = Some "1"

let fixgen_dir () =
  match Sys.getenv_opt "BFC_DISPATCH_FIXDIR" with
  | Some d -> d
  | None -> fixture_dir

(* In generation mode the wheel leg is the canonical source, but we
   still require all four legs to agree before writing anything — a
   fixture the current engine cannot reproduce on every leg would gate
   the refactor on a pre-existing divergence, not a dispatch bug. *)
let generate name setup =
  let expected = render (run_leg Sim.Wheel 1 (setup ())) in
  List.iter
    (fun (leg, sched, shards) ->
      let got = render (run_leg sched shards (setup ())) in
      if got <> expected then
        failf "%s: leg %s disagrees with the wheel leg at generation time" name
          leg)
    (List.tl legs);
  let path = Filename.concat (fixgen_dir ()) (name ^ ".expected") in
  write_file path expected;
  Printf.printf "wrote %s (%d bytes)\n%!" path (String.length expected)

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys ->
      if String.equal x y then go (i + 1) (xs, ys)
      else Printf.sprintf "line %d: %S vs %S" i x y
    | x :: _, [] -> Printf.sprintf "line %d: %S vs <eof>" i x
    | [], y :: _ -> Printf.sprintf "line %d: <eof> vs %S" i y
    | [], [] -> "identical"
  in
  go 1 (la, lb)

let check_leg name setup (leg, sched, shards) () =
  if fixgen then (
    (* generation runs once per workload, on the first leg *)
    if leg = "wheel" then generate name setup)
  else
    let path = Filename.concat fixture_dir (name ^ ".expected") in
    let expected = read_file path in
    let got = render (run_leg sched shards (setup ())) in
    if not (String.equal got expected) then
      failf "%s/%s diverged from the PR-9 fixture (%s)" name leg
        (first_diff_line expected got)

let suite =
  List.concat_map
    (fun (name, setup) ->
      List.map
        (fun ((leg, _, _) as l) ->
          test_case
            (Printf.sprintf "%s byte-identical (%s)" name leg)
            `Slow
            (check_leg name setup l))
        legs)
    workloads
