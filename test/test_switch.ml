(* Tests for the switch model: FIFOs, schedulers, the shared buffer, ECN,
   PFC, INT stamping, and forwarding. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology
module Fifo = Bfc_switch.Fifo
module Sched = Bfc_switch.Sched
module Buffer = Bfc_switch.Buffer
module Switch = Bfc_switch.Switch

let check = Alcotest.check

let flow = Flow.make ~id:1 ~src:0 ~dst:1 ~size:1_000_000 ~arrival:0 ()

let data ?(payload = 1000) ?(remaining = 0) () =
  let p = Packet.data ~flow ~seq:0 ~payload () in
  p.Packet.remaining <- remaining;
  p

(* ------------------------------- Fifo ------------------------------ *)

let test_fifo_accounting () =
  let q = Fifo.create ~idx:0 ~cls:0 in
  Alcotest.(check bool) "empty" true (Fifo.is_empty q);
  let p = data () in
  Fifo.push q p;
  check Alcotest.int "bytes" p.Packet.size q.Fifo.bytes;
  check Alcotest.int "len" 1 (Fifo.length q);
  let got = Fifo.pop q in
  check Alcotest.int "same packet" p.Packet.uid got.Packet.uid;
  check Alcotest.int "bytes zero" 0 q.Fifo.bytes

let test_fifo_head_remaining () =
  let q = Fifo.create ~idx:0 ~cls:0 in
  check Alcotest.int "empty = max_int" max_int (Fifo.head_remaining q);
  Fifo.push q (data ~remaining:500 ());
  Fifo.push q (data ~remaining:99 ());
  check Alcotest.int "head's remaining" 500 (Fifo.head_remaining q)

(* ------------------------------ Sched ------------------------------ *)

let mk_sched ?(n = 4) ?(policy = Sched.Drr) ?(classes = 1) () =
  let queues = Array.init n (fun idx -> Fifo.create ~idx ~cls:(idx * classes / n)) in
  (Sched.create policy ~queues ~classes ~quantum:1100, queues)

let test_sched_drr_round_robin () =
  let s, q = mk_sched () in
  for _ = 1 to 3 do
    Sched.push s q.(0) (data ());
    Sched.push s q.(2) (data ())
  done;
  let order = ref [] in
  let rec drain () =
    match Sched.next s with
    | Some (fifo, _) ->
      order := fifo.Fifo.idx :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "alternates" [ 0; 2; 0; 2; 0; 2 ] (List.rev !order)

let test_sched_drr_byte_fairness () =
  (* queue 0 has big packets, queue 1 small ones: over time bytes served
     should be roughly equal *)
  let s, q = mk_sched () in
  for _ = 1 to 50 do
    Sched.push s q.(0) (data ~payload:1000 ())
  done;
  for _ = 1 to 500 do
    Sched.push s q.(1) (data ~payload:100 ())
  done;
  let served = [| 0; 0 |] in
  for _ = 1 to 200 do
    match Sched.next s with
    | Some (fifo, pkt) -> served.(fifo.Fifo.idx) <- served.(fifo.Fifo.idx) + pkt.Packet.size
    | None -> ()
  done;
  let ratio = float_of_int served.(0) /. float_of_int served.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "byte-fair (ratio %f)" ratio)
    true
    (ratio > 0.75 && ratio < 1.35)

let test_sched_pause_eligibility () =
  let s, q = mk_sched () in
  Sched.push s q.(0) (data ());
  Sched.push s q.(1) (data ());
  Sched.set_paused s q.(0) true;
  (match Sched.next s with
  | Some (fifo, _) -> check Alcotest.int "skips paused" 1 fifo.Fifo.idx
  | None -> Alcotest.fail "expected a packet");
  check Alcotest.(option (pair int int)) "nothing else eligible" None
    (Option.map (fun (f, (p : Packet.t)) -> (f.Fifo.idx, p.Packet.payload)) (Sched.next s));
  Sched.set_paused s q.(0) false;
  match Sched.next s with
  | Some (fifo, _) -> check Alcotest.int "resumed queue serves" 0 fifo.Fifo.idx
  | None -> Alcotest.fail "expected resumed packet"

let test_sched_n_active () =
  let s, q = mk_sched () in
  check Alcotest.int "idle" 0 (Sched.n_active s);
  Sched.push s q.(0) (data ());
  Sched.push s q.(1) (data ());
  check Alcotest.int "two active" 2 (Sched.n_active s);
  Sched.set_paused s q.(1) true;
  check Alcotest.int "paused not active" 1 (Sched.n_active s);
  check Alcotest.int "still backlogged" 2 (Sched.n_backlogged s);
  ignore (Sched.next s);
  check Alcotest.int "drained one" 0 (Sched.n_active s)

let test_sched_srf_order () =
  let s, q = mk_sched ~policy:Sched.Srf () in
  Sched.push s q.(0) (data ~remaining:5000 ());
  Sched.push s q.(1) (data ~remaining:100 ());
  Sched.push s q.(2) (data ~remaining:900 ());
  let order = ref [] in
  let rec drain () =
    match Sched.next s with
    | Some (fifo, _) ->
      order := fifo.Fifo.idx :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "shortest remaining first" [ 1; 2; 0 ] (List.rev !order)

let test_sched_prio_strict () =
  let s, q = mk_sched ~policy:Sched.Prio_strict () in
  Sched.push s q.(3) (data ());
  Sched.push s q.(1) (data ());
  Sched.push s q.(3) (data ());
  let order = ref [] in
  let rec drain () =
    match Sched.next s with
    | Some (fifo, _) ->
      order := fifo.Fifo.idx :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "lowest index first" [ 1; 3; 3 ] (List.rev !order)

let test_sched_classes () =
  (* 4 queues, 2 classes; class 0 (queues 0-1) strictly beats class 1 *)
  let s, q = mk_sched ~classes:2 () in
  Sched.push s q.(3) (data ());
  Sched.push s q.(0) (data ());
  (match Sched.next s with
  | Some (fifo, _) -> check Alcotest.int "high class first" 0 fifo.Fifo.idx
  | None -> Alcotest.fail "no packet");
  match Sched.next s with
  | Some (fifo, _) -> check Alcotest.int "then low class" 3 fifo.Fifo.idx
  | None -> Alcotest.fail "no packet"

(* ------------------------------ Buffer ----------------------------- *)

let test_buffer_admission () =
  let b = Buffer.create ~total:10_000 ~alpha:1.0 ~n_ingress:2 in
  Alcotest.(check bool) "admits into empty" true (Buffer.admit b ~queue_bytes:0 ~size:1000);
  Buffer.on_enqueue b ~in_port:0 ~size:9_500;
  Alcotest.(check bool) "rejects overflow" false (Buffer.admit b ~queue_bytes:0 ~size:1000);
  check Alcotest.int "ingress accounting" 9_500 (Buffer.ingress_used b 0);
  Buffer.on_dequeue b ~in_port:0 ~size:9_500;
  check Alcotest.int "freed" 0 (Buffer.used b)

let test_buffer_dynamic_threshold () =
  let b = Buffer.create ~total:10_000 ~alpha:0.5 ~n_ingress:1 in
  Buffer.on_enqueue b ~in_port:0 ~size:6_000;
  (* free = 4000; threshold = 2000: a queue already at 2500 is rejected *)
  Alcotest.(check bool) "DT rejects hog queue" false (Buffer.admit b ~queue_bytes:2_500 ~size:100);
  Alcotest.(check bool) "DT admits small queue" true (Buffer.admit b ~queue_bytes:500 ~size:100)

let test_buffer_infinite () =
  let b = Buffer.create ~total:max_int ~alpha:1.0 ~n_ingress:1 in
  Alcotest.(check bool) "infinite" true (Buffer.infinite b);
  Alcotest.(check bool) "always admits" true (Buffer.admit b ~queue_bytes:max_int ~size:1_000_000)

(* --------------------------- Switch glue --------------------------- *)

(* Build: h0, h1 -> sw -> hR; the switch forwards by routing hook. *)
let mini_net ?(config = Switch.default_config) () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let route _sw ~in_port:_ pkt = (Topology.candidates t ~node:st.Topology.st_switch ~dst:pkt.Packet.dst).(0) in
  let sw =
    Switch.create ~sim ~node:(Topology.node t st.Topology.st_switch)
      ~ports:(Topology.ports t st.Topology.st_switch) ~config ~route ()
  in
  (sim, st, t, sw)

let receiver_log t st =
  let log = ref [] in
  (Topology.node t st.Topology.st_receiver).Node.handler <-
    (fun ~in_port:_ pkt -> log := pkt :: !log);
  log

let send_from t st i pkt = Port.send (Topology.ports t st.Topology.st_senders.(i)).(0) pkt

(* Deliver straight into the switch on sender [i]'s ingress port (bursts
   faster than a single host uplink could physically produce). *)
let deliver_burst t st i pkt = Node.deliver (Topology.node t st.Topology.st_switch) ~in_port:i pkt

let test_switch_forwards () =
  let sim, st, t, _sw = mini_net () in
  let log = receiver_log t st in
  let f = Flow.make ~id:4 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1000 ~arrival:0 () in
  send_from t st 0 (Packet.data ~flow:f ~seq:0 ~payload:1000 ());
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "delivered" 1 (List.length !log)

let test_switch_queues_when_contended () =
  let sim, st, t, sw = mini_net () in
  let log = receiver_log t st in
  (* both senders blast 20 packets at the same time: the 100G egress must
     serialize 40 packets => last arrival ~40 x 84ns after the first *)
  for i = 0 to 1 do
    let f =
      Flow.make ~id:(10 + i) ~src:st.Topology.st_senders.(i) ~dst:st.Topology.st_receiver
        ~size:20_000 ~arrival:0 ()
    in
    for k = 0 to 19 do
      ignore
        (Sim.at sim (k * 84) (fun () ->
             deliver_burst t st i (Packet.data ~flow:f ~seq:(k * 1000) ~payload:1000 ())))
    done
  done;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "all 40 delivered" 40 (List.length !log);
  check Alcotest.int "no drops" 0 (Switch.drops sw);
  (* queuing delay accumulated on at least the tail packets *)
  let delayed = List.filter (fun p -> p.Packet.q_delay > 0) !log in
  Alcotest.(check bool) "tail packets queued" true (List.length delayed > 10)

let test_switch_drops_when_full () =
  let config = { Switch.default_config with Switch.buffer_bytes = 5_000 } in
  let sim, st, t, sw = mini_net ~config () in
  let _log = receiver_log t st in
  let f = Flow.make ~id:9 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:100_000 ~arrival:0 () in
  (* 2 senders x 30 pkts instantly: way over the 5KB buffer *)
  for i = 0 to 1 do
    for k = 0 to 29 do
      ignore
        (Sim.at sim (k * 42) (fun () ->
             deliver_burst t st i (Packet.data ~flow:f ~seq:(k * 1000) ~payload:1000 ())))
    done
  done;
  ignore (Sim.run_until_idle sim);
  Alcotest.(check bool) "drops happened" true (Switch.drops sw > 0);
  Alcotest.(check bool) "data drops counted" true (Switch.data_drops sw > 0)

let test_switch_ecn_marks () =
  let config =
    {
      Switch.default_config with
      Switch.ecn = Some { Switch.kmin = 2_000; kmax = 4_000; pmax = 1.0 };
    }
  in
  let sim, st, t, _sw = mini_net ~config () in
  let log = receiver_log t st in
  let f = Flow.make ~id:3 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:50_000 ~arrival:0 () in
  for k = 0 to 29 do
    (* all at t=0: the queue builds beyond kmax *)
    deliver_burst t st 0 (Packet.data ~flow:f ~seq:(k * 1000) ~payload:1000 ())
  done;
  ignore (Sim.run_until_idle sim);
  let marked = List.length (List.filter (fun p -> p.Packet.ecn) !log) in
  Alcotest.(check bool) (Printf.sprintf "some marked (%d)" marked) true (marked > 5);
  let unmarked = List.length (List.filter (fun p -> not p.Packet.ecn) !log) in
  Alcotest.(check bool) "early packets unmarked" true (unmarked >= 2)

let test_switch_int_stamping () =
  let config = { Switch.default_config with Switch.int_stamping = true } in
  let sim, st, t, _sw = mini_net ~config () in
  let log = receiver_log t st in
  let f = Flow.make ~id:5 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1000 ~arrival:0 () in
  send_from t st 0 (Packet.data ~flow:f ~seq:0 ~payload:1000 ());
  ignore (Sim.run_until_idle sim);
  match !log with
  | [ p ] ->
    check Alcotest.int "one INT hop" 1 (Packet.int_hop_count p);
    let h = Packet.get_int_hop p 0 in
    Alcotest.(check (float 0.01)) "gbps recorded" 100.0 h.Packet.h_gbps;
    Alcotest.(check bool) "tx bytes positive" true (h.Packet.h_tx_bytes > 0)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_switch_pfc_pause_resume () =
  (* tiny buffer so ingress occupancy crosses the PFC threshold *)
  let config =
    {
      Switch.default_config with
      Switch.buffer_bytes = 40_000;
      pfc = Some { Switch.threshold_frac = 0.11; resume_frac = 0.8 };
    }
  in
  let sim, st, t, sw = mini_net ~config () in
  let _log = receiver_log t st in
  (* sender 0's host node observes Pfc control packets and complies *)
  let pfc_events = ref [] in
  let paused = ref false in
  (Topology.node t st.Topology.st_senders.(0)).Node.handler <-
    (fun ~in_port:_ pkt ->
      if pkt.Packet.kind = Packet.Pfc then begin
        pfc_events := pkt.Packet.ctrl_b :: !pfc_events;
        paused := pkt.Packet.ctrl_b = 1
      end);
  let f = Flow.make ~id:6 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:100_000 ~arrival:0 () in
  (* inject at 2x line rate, but honour the pause like a real upstream *)
  let k = ref 0 in
  let rec inject () =
    if !k < 60 then begin
      if not !paused then begin
        deliver_burst t st 0 (Packet.data ~flow:f ~seq:(!k * 1000) ~payload:1000 ());
        incr k
      end;
      ignore (Sim.after sim 42 inject)
    end
  in
  inject ();
  ignore (Sim.run_until_idle sim);
  Alcotest.(check bool) "pause sent" true (List.mem 1 !pfc_events);
  Alcotest.(check bool) "resume sent" true (List.mem 0 !pfc_events);
  check Alcotest.int "no drops thanks to PFC headroom" 0 (Switch.drops sw)

let test_switch_pfc_pauses_egress () =
  let sim, st, t, sw = mini_net () in
  let _log = receiver_log t st in
  let f = Flow.make ~id:7 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:10_000 ~arrival:0 () in
  (* find the egress towards the receiver and PFC-pause it externally *)
  let egress = ref (-1) in
  Array.iteri
    (fun i p -> if (Port.peer p).Node.id = st.Topology.st_receiver then egress := i)
    (Topology.ports t st.Topology.st_switch);
  let pfc = Packet.make Packet.Pfc ~src:(-1) ~dst:(-1) ~size:64 () in
  pfc.Packet.ctrl_b <- 1;
  Node.deliver (Topology.node t st.Topology.st_switch) ~in_port:!egress pfc;
  send_from t st 0 (Packet.data ~flow:f ~seq:0 ~payload:1000 ());
  ignore (Sim.run sim ~until:(Time.us 100.0));
  Alcotest.(check bool) "held while paused" true (Switch.egress_bytes sw ~egress:!egress > 0);
  Alcotest.(check bool) "pause time accounted" true (Switch.pfc_paused_ns sw ~egress:!egress > 0);
  let resume = Packet.make Packet.Pfc ~src:(-1) ~dst:(-1) ~size:64 () in
  resume.Packet.ctrl_b <- 0;
  Node.deliver (Topology.node t st.Topology.st_switch) ~in_port:!egress resume;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "drained after resume" 0 (Switch.egress_bytes sw ~egress:!egress)

let test_switch_conservation () =
  let sim, st, t, sw = mini_net () in
  let log = receiver_log t st in
  let n = 100 in
  for i = 0 to 1 do
    let f =
      Flow.make ~id:(20 + i) ~src:st.Topology.st_senders.(i) ~dst:st.Topology.st_receiver
        ~size:(n * 1000) ~arrival:0 ()
    in
    for k = 0 to (n / 2) - 1 do
      ignore
        (Sim.at sim (k * 90) (fun () ->
             send_from t st i (Packet.data ~flow:f ~seq:(k * 1000) ~payload:1000 ())))
    done
  done;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "rx = tx + drops" (Switch.rx_packets sw)
    (Switch.tx_packets sw + Switch.drops sw);
  check Alcotest.int "all delivered" n (List.length !log);
  check Alcotest.int "buffer empty at the end" 0 (Switch.buffer_used sw)

let test_switch_queue_pause_api () =
  let sim, st, t, sw = mini_net () in
  let log = receiver_log t st in
  let f = Flow.make ~id:8 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:2000 ~arrival:0 () in
  let egress = ref (-1) in
  Array.iteri
    (fun i p -> if (Port.peer p).Node.id = st.Topology.st_receiver then egress := i)
    (Topology.ports t st.Topology.st_switch);
  (* default classify maps prio 0 -> queue 0 *)
  Switch.set_queue_paused sw ~egress:!egress ~queue:0 true;
  send_from t st 0 (Packet.data ~flow:f ~seq:0 ~payload:1000 ());
  ignore (Sim.run sim ~until:(Time.us 50.0));
  check Alcotest.int "held" 0 (List.length !log);
  check Alcotest.int "n_active excludes paused" 0 (Switch.n_active sw ~egress:!egress);
  Switch.set_queue_paused sw ~egress:!egress ~queue:0 false;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "released" 1 (List.length !log)

let suite =
  [
    ("fifo accounting", `Quick, test_fifo_accounting);
    ("fifo head remaining", `Quick, test_fifo_head_remaining);
    ("sched drr round robin", `Quick, test_sched_drr_round_robin);
    ("sched drr byte fairness", `Quick, test_sched_drr_byte_fairness);
    ("sched pause eligibility", `Quick, test_sched_pause_eligibility);
    ("sched n_active", `Quick, test_sched_n_active);
    ("sched srf order", `Quick, test_sched_srf_order);
    ("sched strict priority", `Quick, test_sched_prio_strict);
    ("sched classes", `Quick, test_sched_classes);
    ("buffer admission", `Quick, test_buffer_admission);
    ("buffer dynamic threshold", `Quick, test_buffer_dynamic_threshold);
    ("buffer infinite", `Quick, test_buffer_infinite);
    ("switch forwards", `Quick, test_switch_forwards);
    ("switch queues under contention", `Quick, test_switch_queues_when_contended);
    ("switch drops when full", `Quick, test_switch_drops_when_full);
    ("switch ecn marks", `Quick, test_switch_ecn_marks);
    ("switch int stamping", `Quick, test_switch_int_stamping);
    ("switch pfc pause/resume", `Quick, test_switch_pfc_pause_resume);
    ("switch pfc pauses egress", `Quick, test_switch_pfc_pauses_egress);
    ("switch conservation", `Quick, test_switch_conservation);
    ("switch queue pause api", `Quick, test_switch_queue_pause_api);
  ]
