(* The observability layer: registry semantics, trace ring + exporters,
   time series, tracer wrap behaviour, engine self-profiling and the
   end-to-end telemetry wiring. Exporter output is validated with a small
   recursive-descent JSON parser (the repo deliberately has no JSON
   dependency). *)

module Registry = Bfc_obs.Registry
module Trace = Bfc_obs.Trace
module Series = Bfc_obs.Series
module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Runner = Bfc_sim.Runner
module Scheme = Bfc_sim.Scheme
module Tracer = Bfc_sim.Tracer
module Telemetry = Bfc_sim.Telemetry

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser, just enough to validate exporter output. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad_json (Printf.sprintf "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with Some (' ' | '\n' | '\t' | '\r') -> incr pos; skip_ws () | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos; Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | 'u' -> pos := !pos + 5 (* \uXXXX; decoded value irrelevant here *)
          | c -> Buffer.add_char b c; incr pos);
          go ()
        | c -> Buffer.add_char b c; incr pos; go ()
    in
    go ()
  in
  let lit w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let number () =
    let start = !pos in
    let numc = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while !pos < n && numc s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; fields ((k, v) :: acc)
        | Some '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
        | _ -> fail "bad object"
      in
      fields []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; elems (v :: acc)
        | Some ']' -> incr pos; Arr (List.rev (v :: acc))
        | _ -> fail "bad array"
      in
      elems []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing data";
  v

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> Alcotest.failf "missing field %S" name)
  | _ -> Alcotest.failf "not an object (looking for %S)" name

let num = function Num f -> f | _ -> Alcotest.fail "not a number"

let str = function Str s -> s | _ -> Alcotest.fail "not a string"

let arr = function Arr l -> l | _ -> Alcotest.fail "not an array"

let with_temp_file f =
  let path = Filename.temp_file "bfc_obs_test" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      f oc;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)

(* Chrome trace invariants: parses, has events, and per (pid, tid) track
   the timestamps never go backwards. Returns the non-metadata events. *)
let validate_chrome s =
  let evs = arr (field "traceEvents" (parse_json s)) in
  let last = Hashtbl.create 16 in
  let data =
    List.filter
      (fun e ->
        match str (field "ph" e) with
        | "M" -> false
        | _ ->
          let k = (int_of_float (num (field "pid" e)), int_of_float (num (field "tid" e))) in
          let ts = num (field "ts" e) in
          (match Hashtbl.find_opt last k with
          | Some prev ->
            if ts < prev then
              Alcotest.failf "track (%d,%d): ts %.3f after %.3f" (fst k) (snd k) ts prev
          | None -> ());
          Hashtbl.replace last k ts;
          true)
      evs
  in
  checkb "trace has events" true (data <> []);
  data

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_counter_reuse () =
  let r = Registry.create () in
  let a = Registry.counter r "pkts" in
  let b = Registry.counter r "pkts" in
  Registry.incr r a;
  Registry.add r b 4;
  checki "shared slot" 5 (Registry.value r a);
  checki "one entry" 1 (List.length (Registry.counters r));
  check (Alcotest.pair Alcotest.string Alcotest.int) "entry" ("pkts", 5)
    (List.hd (Registry.counters r))

let test_disabled_noop () =
  let r = Registry.create ~enabled:false () in
  checkb "disabled" false (Registry.enabled r);
  let c = Registry.counter r "c" in
  Registry.incr r c;
  Registry.add r c 100;
  checki "counter untouched" 0 (Registry.value r c);
  let h = Registry.histogram r "h" ~edges:[| 1.0; 2.0 |] in
  Registry.observe r h 0.5;
  checki "histogram untouched" 0 (Array.fold_left ( + ) 0 (Registry.histogram_counts r h));
  let called = ref false in
  Registry.gauge r "g" (fun () -> called := true; 1.0);
  checkb "no gauge samples" true (Registry.sample_gauges r = []);
  checkb "gauge closure not run" false !called

let test_histogram_edges () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" ~edges:[| 10.0; 20.0; 30.0 |] in
  List.iter (Registry.observe r h) [ 5.0; 9.999; 10.0; 19.0; 29.999; 30.0; 1000.0 ];
  check (Alcotest.array Alcotest.int) "bucket boundaries" [| 2; 2; 1; 2 |]
    (Registry.histogram_counts r h);
  checki "edges + overflow" 4 (Array.length (Registry.histogram_counts r h));
  (* same name, same edges: same handle *)
  let h' = Registry.histogram r "lat" ~edges:[| 10.0; 20.0; 30.0 |] in
  Registry.observe r h' 0.0;
  checki "shared histogram" 3 (Registry.histogram_counts r h).(0);
  Alcotest.check_raises "conflicting edges"
    (Invalid_argument "Registry.histogram: lat already registered with other edges")
    (fun () -> ignore (Registry.histogram r "lat" ~edges:[| 1.0 |]))

let test_gauge_order () =
  let r = Registry.create () in
  Registry.gauge r "b_second" (fun () -> 2.0);
  Registry.gauge r "a_first" (fun () -> 1.0);
  Registry.gauge r "c_third" (fun () -> 3.0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "registration order, not name order"
    [ ("b_second", 2.0); ("a_first", 1.0); ("c_third", 3.0) ]
    (Registry.sample_gauges r)

let test_registry_json () =
  let r = Registry.create () in
  let c = Registry.counter r "drops" in
  Registry.add r c 7;
  Registry.gauge r "depth" (fun () -> 42.5);
  let h = Registry.histogram r "sz" ~edges:[| 100.0 |] in
  Registry.observe r h 5.0;
  Registry.observe r h 500.0;
  let j = parse_json (Registry.to_json r) in
  checki "counter value" 7 (int_of_float (num (field "drops" (field "counters" j))));
  check (Alcotest.float 1e-9) "gauge value" 42.5 (num (field "depth" (field "gauges" j)));
  let hj = field "sz" (field "histograms" j) in
  checki "histogram counts" 2 (List.length (arr (field "counts" hj)) - 1 + 1 - 1 + 1);
  check (Alcotest.list (Alcotest.float 1e-9)) "histogram data" [ 1.0; 1.0 ]
    (List.map num (arr (field "counts" hj)))

(* ------------------------------------------------------------------ *)
(* Trace ring + exporters *)

let test_trace_ring_wrap () =
  let t = Trace.create ~capacity:4 () in
  let ev = Trace.intern t "ev" in
  for i = 0 to 9 do
    Trace.instant t ~ts:(i * 10) ~name:ev ~pid:0 ~tid:0 ~a:i ()
  done;
  checki "buffered" 4 (Trace.length t);
  checki "recorded counts overwritten" 10 (Trace.recorded t);
  let seen = ref [] in
  Trace.iter t (fun ~ts ~dur:_ ~name:_ ~pid:_ ~tid:_ ~a:_ ~b:_ -> seen := ts :: !seen);
  check (Alcotest.list Alcotest.int) "oldest-first after wrap" [ 60; 70; 80; 90 ]
    (List.rev !seen)

let test_chrome_export () =
  let t = Trace.create () in
  let span = Trace.intern t ~akey:"flow" "queued" in
  let mark = Trace.intern t ~akey:"q" "pause" in
  Trace.instant t ~ts:100 ~name:mark ~pid:1 ~tid:2 ~a:3 ();
  (* recorded later but starting earlier: the exporter must sort *)
  Trace.complete t ~ts:50 ~dur:200 ~name:span ~pid:1 ~tid:2 ~a:9 ();
  Trace.instant t ~ts:400 ~name:mark ~pid:2 ~tid:0 ();
  let s = with_temp_file (fun oc ->
      Trace.to_chrome ~process_name:(fun ~pid -> Some (Printf.sprintf "node %d" pid)) t oc)
  in
  let data = validate_chrome s in
  checki "all records exported" 3 (List.length data);
  (* args carry the interned per-name keys *)
  let first = List.hd data in
  check (Alcotest.float 1e-9) "sorted: span first" 0.05 (num (field "ts" first));
  checki "span arg key" 9 (int_of_float (num (field "flow" (field "args" first))))

let test_jsonl_export () =
  let t = Trace.create () in
  let ev = Trace.intern t ~akey:"x" ~bkey:"y" "e" in
  Trace.instant t ~ts:1 ~name:ev ~pid:0 ~tid:0 ~a:1 ~b:2 ();
  Trace.instant t ~ts:2 ~name:ev ~pid:0 ~tid:1 ();
  let s = with_temp_file (fun oc -> Trace.to_jsonl t oc) in
  let lines = String.split_on_char '\n' (String.trim s) in
  checki "one line per record" 2 (List.length lines);
  List.iter
    (fun line ->
      let j = parse_json line in
      ignore (num (field "ts" j));
      check Alcotest.string "name" "e" (str (field "name" j)))
    lines;
  let j0 = parse_json (List.hd lines) in
  checki "a key" 1 (int_of_float (num (field "x" (field "args" j0))));
  checki "b key" 2 (int_of_float (num (field "y" (field "args" j0))))

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_columns () =
  let r = Registry.create () in
  let depth = ref 0.0 in
  Registry.gauge r "z_depth" (fun () -> !depth);
  Registry.gauge r "a_flows" (fun () -> 2.0 *. !depth);
  let s = Series.create r in
  (* a gauge registered after create is not a column *)
  Registry.gauge r "late" (fun () -> 99.0);
  check (Alcotest.list Alcotest.string) "stable column order" [ "t_ns"; "z_depth"; "a_flows" ]
    (Series.columns s);
  depth := 3.0;
  Series.sample s ~now:1000;
  depth := 5.0;
  Series.sample s ~now:2000;
  checki "two samples" 2 (Series.n_samples s);
  (match Series.rows s with
  | [ (1000, r1); (2000, r2) ] ->
    check (Alcotest.float 1e-9) "row1" 3.0 r1.(0);
    check (Alcotest.float 1e-9) "row2 second col" 10.0 r2.(1)
  | _ -> Alcotest.fail "rows");
  let csv = with_temp_file (fun oc -> Series.to_csv s oc) in
  (match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
    check Alcotest.string "csv header" "t_ns,z_depth,a_flows" header;
    checki "csv rows" 2 (List.length rows)
  | [] -> Alcotest.fail "empty csv")

let test_series_disabled () =
  let r = Registry.create ~enabled:false () in
  Registry.gauge r "g" (fun () -> Alcotest.fail "gauge sampled on disabled registry");
  let s = Series.create r in
  Series.sample s ~now:5;
  checki "no rows" 0 (Series.n_samples s)

(* ------------------------------------------------------------------ *)
(* Tracer ring wrap (regression: events stay oldest-first, observed keeps
   counting past the ring) *)

let small_env () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  (sim, st, Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params)

let test_tracer_wrap () =
  let sim, _st, env = small_env () in
  let cap = 8 in
  let extra = 5 in
  let tr = Tracer.attach env ~capacity:cap in
  for i = 0 to cap + extra - 1 do
    ignore
      (Sim.at sim (Time.ns ((i + 1) * 100)) (fun () ->
           Tracer.note tr env ~node:0 (Tracer.Dropped { flow = i })))
  done;
  ignore (Sim.run sim ~until:(Time.us 10.0));
  checki "observed counts beyond the ring" (cap + extra) (Tracer.observed tr);
  let evs = Tracer.events tr in
  checki "ring keeps capacity" cap (List.length evs);
  let ats = List.map (fun e -> e.Tracer.at) evs in
  checkb "chronological" true (List.sort compare ats = ats);
  (* the survivors are exactly the newest [cap] notes *)
  let flows =
    List.map (function { Tracer.ev = Tracer.Dropped { flow }; _ } -> flow | _ -> -1) evs
  in
  check (Alcotest.list Alcotest.int) "oldest fell off" (List.init cap (fun i -> extra + i)) flows

(* ------------------------------------------------------------------ *)
(* Engine self-profile *)

let test_engine_profile () =
  let sim = Sim.create () in
  let ran = ref 0 in
  for i = 1 to 5 do
    ignore (Sim.at sim (Time.ns (i * 10)) (fun () -> incr ran))
  done;
  let ticks = ref 0 in
  let tk =
    Sim.every sim ~period:(Time.ns 100) (fun () -> incr ticks)
  in
  ignore tk;
  ignore (Sim.run sim ~until:(Time.ns 1000));
  let p = Sim.profile sim in
  checki "one-shot executions" 5 p.Sim.p_one_shot;
  checkb "ticker executions" true (p.Sim.p_ticker >= 5);
  checki "classes sum to executed" p.Sim.p_executed
    (p.Sim.p_one_shot + p.Sim.p_reusable + p.Sim.p_ticker);
  checki "matches executed_events" (Sim.executed_events sim) p.Sim.p_executed;
  checkb "heap high-water seen" true (p.Sim.p_heap_hwm >= 1);
  checkb "capacity bounds hwm" true (p.Sim.p_heap_capacity >= p.Sim.p_heap_hwm)

(* ------------------------------------------------------------------ *)
(* Telemetry end-to-end: a small incast with the full subsystem attached *)

let test_telemetry_end_to_end () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:4 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params in
  let tel =
    Telemetry.attach
      ~config:
        {
          Telemetry.t_enabled = true;
          t_trace = true;
          t_trace_capacity = 0;
          t_series_period = Some (Time.us 5.0);
        }
      env
  in
  let flows =
    List.init 4 (fun i ->
        Flow.make ~id:i ~src:st.Topology.st_senders.(i) ~dst:st.Topology.st_receiver ~size:64_000
          ~arrival:(Time.us (0.1 *. float_of_int i))
          ~is_incast:true ())
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.us 300.0);
  Runner.drain env ~budget:(Time.ms 5.0);
  checki "all flows done" 4 (Runner.completed env);
  let counters = Registry.counters (Telemetry.registry tel) in
  let v name = match List.assoc_opt name counters with Some x -> x | None -> -1 in
  checkb "enqueues counted" true (v "sw_enqueues" > 0);
  checki "dequeues + drops = enqueues" (v "sw_enqueues") (v "sw_dequeues" + v "sw_drops");
  checkb "port tx counted" true (v "port_tx_packets" > 0);
  checkb "pauses paired" true (v "queue_pauses" >= v "queue_resumes");
  (* the Chrome export is valid and per-track monotone *)
  let s = with_temp_file (fun oc -> Telemetry.write_trace tel oc) in
  let data = validate_chrome s in
  checkb "queued spans present" true
    (List.exists (fun e -> str (field "name" e) = "queued") data);
  (* the series sampled and leads with the time column *)
  (match Telemetry.series tel with
  | None -> Alcotest.fail "series not created"
  | Some ser ->
    checkb "series sampled" true (Series.n_samples ser > 0);
    check Alcotest.string "time column first" "t_ns" (List.hd (Series.columns ser)));
  (* registry and engine-profile JSON both parse *)
  ignore (parse_json (Telemetry.counters_json tel));
  let prof = parse_json (Telemetry.engine_profile_json env) in
  checkb "engine executed events" true (num (field "executed" prof) > 0.0);
  (* traffic ran, so typed events (deliveries, tx wakeups) must appear *)
  checkb "typed events counted" true (num (field "typed" prof) > 0.0)

let test_telemetry_disabled () =
  let _sim, st, env = small_env () in
  let tel =
    Telemetry.attach
      ~config:
        {
          Telemetry.t_enabled = false;
          t_trace = true;
          t_trace_capacity = 0;
          t_series_period = Some (Time.us 5.0);
        }
      env
  in
  ignore st;
  checkb "no trace" true (Telemetry.trace tel = None);
  checkb "no series" true (Telemetry.series tel = None);
  checkb "registry disabled" false (Registry.enabled (Telemetry.registry tel))

(* ------------------------------------------------------------------ *)
(* Stats: NaN-proof sort in Sample.sorted *)

let test_sample_nan_sort () =
  let module Sample = Bfc_util.Stats.Sample in
  let s = Sample.create () in
  List.iter (Sample.add s) [ 3.0; Float.nan; 1.0; 2.0 ];
  let sorted = Sample.sorted s in
  checki "all samples kept" 4 (Array.length sorted);
  (* Float.compare totally orders NaN below everything: the finite suffix
     stays sorted instead of being scrambled *)
  checkb "nan first" true (Float.is_nan sorted.(0));
  check (Alcotest.list (Alcotest.float 1e-9)) "finite suffix ordered" [ 1.0; 2.0; 3.0 ]
    (Array.to_list (Array.sub sorted 1 3));
  check (Alcotest.float 1e-9) "max unaffected" 3.0 (Sample.max s)

let suite =
  [
    Alcotest.test_case "registry: counter handle reuse" `Quick test_counter_reuse;
    Alcotest.test_case "registry: disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "registry: histogram bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "registry: gauge registration order" `Quick test_gauge_order;
    Alcotest.test_case "registry: JSON export parses" `Quick test_registry_json;
    Alcotest.test_case "trace: ring wrap keeps oldest-first" `Quick test_trace_ring_wrap;
    Alcotest.test_case "trace: chrome export valid + monotone" `Quick test_chrome_export;
    Alcotest.test_case "trace: jsonl export" `Quick test_jsonl_export;
    Alcotest.test_case "series: stable columns + csv" `Quick test_series_columns;
    Alcotest.test_case "series: disabled registry records nothing" `Quick test_series_disabled;
    Alcotest.test_case "tracer: ring wrap regression" `Quick test_tracer_wrap;
    Alcotest.test_case "engine: self-profile counters" `Quick test_engine_profile;
    Alcotest.test_case "telemetry: end-to-end star run" `Quick test_telemetry_end_to_end;
    Alcotest.test_case "telemetry: disabled attach" `Quick test_telemetry_disabled;
    Alcotest.test_case "stats: NaN-proof Sample.sorted" `Quick test_sample_nan_sort;
  ]
