let () =
  Alcotest.run "bfc"
    [
      ("util", Test_util.suite);
      ("engine", Test_engine.suite);
      ("net", Test_net.suite);
      ("switch", Test_switch.suite);
      ("bfc", Test_bfc.suite);
      ("transport", Test_transport.suite);
      ("workload", Test_workload.suite);
      ("sim", Test_sim.suite);
      ("more", Test_more.suite);
      ("credit", Test_credit.suite);
      ("extra", Test_extra.suite);
      ("final", Test_final.suite);
      ("fault", Test_fault.suite);
      ("stress", Test_stress.suite);
      ("lint", Test_lint.suite);
      ("ir", Test_ir.suite);
      ("perf", Test_perf.suite);
      ("obs", Test_obs.suite);
      ("pdes", Test_pdes.suite);
      ("stream", Test_stream.suite);
      ("dispatch", Test_dispatch.suite);
    ]
