(* Tests for the BFC core: flow table, pause counters, DQA, thresholds,
   the dataplane state machine end-to-end, deadlock analysis and the
   analytic models. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Flow_table = Bfc_core.Flow_table
module Pause_counter = Bfc_core.Pause_counter
module Dqa = Bfc_core.Dqa
module Threshold = Bfc_core.Threshold
module Dataplane = Bfc_core.Dataplane
module Deadlock = Bfc_core.Deadlock
module Model = Bfc_core.Model
module Active_flows = Bfc_core.Active_flows

let check = Alcotest.check

(* ---------------------------- Flow table --------------------------- *)

let test_flow_table_sizing () =
  let ft = Flow_table.create ~egresses:4 ~queues_per_port:32 ~mult:100 in
  (* 32 * 100 = 3200, rounded up to the next power of two for mask lookup *)
  check Alcotest.int "slots per port" 4096 (Flow_table.slots_per_port ft);
  check Alcotest.int "total" 16_384 (Flow_table.total_slots ft)

let test_flow_table_same_slot_same_entry () =
  let ft = Flow_table.create ~egresses:2 ~queues_per_port:8 ~mult:10 in
  let e1 = Flow_table.entry ft ~egress:0 ~fid_hash:5 in
  let e2 = Flow_table.entry ft ~egress:0 ~fid_hash:5 in
  let e3 = Flow_table.entry ft ~egress:0 ~fid_hash:(5 + 128) (* wraps to same slot *) in
  let e4 = Flow_table.entry ft ~egress:1 ~fid_hash:5 in
  Alcotest.(check bool) "same hash same entry" true (e1 == e2);
  Alcotest.(check bool) "index collision shares entry" true (e1 == e3);
  Alcotest.(check bool) "different egress different entry" true (e1 != e4)

let test_flow_table_occupied () =
  let ft = Flow_table.create ~egresses:1 ~queues_per_port:4 ~mult:4 in
  check Alcotest.int "none" 0 (Flow_table.occupied ft ~egress:0);
  (Flow_table.entry ft ~egress:0 ~fid_hash:1).Flow_table.size <- 2;
  (Flow_table.entry ft ~egress:0 ~fid_hash:2).Flow_table.size <- 1;
  check Alcotest.int "two occupied" 2 (Flow_table.occupied ft ~egress:0)

(* -------------------------- Pause counter -------------------------- *)

let test_pause_counter_edges () =
  let pc = Pause_counter.create ~ingresses:2 ~max_upstream_q:8 in
  check
    (Alcotest.testable (fun fmt _ -> Format.fprintf fmt "edge") ( = ))
    "0->1 pauses" Pause_counter.Went_up
    (Pause_counter.incr pc ~ingress:0 ~upstream_q:3);
  Alcotest.(check bool) "paused" true (Pause_counter.paused pc ~ingress:0 ~upstream_q:3);
  Alcotest.(check bool) "1->2 silent" true
    (Pause_counter.incr pc ~ingress:0 ~upstream_q:3 = Pause_counter.No_change);
  Alcotest.(check bool) "2->1 silent" true
    (Pause_counter.decr pc ~ingress:0 ~upstream_q:3 = Pause_counter.No_change);
  Alcotest.(check bool) "1->0 resumes" true
    (Pause_counter.decr pc ~ingress:0 ~upstream_q:3 = Pause_counter.Went_down);
  Alcotest.(check bool) "unpaused" false (Pause_counter.paused pc ~ingress:0 ~upstream_q:3)

let test_pause_counter_underflow () =
  let pc = Pause_counter.create ~ingresses:1 ~max_upstream_q:4 in
  Alcotest.check_raises "decr at zero" (Invalid_argument "Pause_counter.decr: counter already zero")
    (fun () -> ignore (Pause_counter.decr pc ~ingress:0 ~upstream_q:0))

let test_pause_counter_bitmap () =
  let pc = Pause_counter.create ~ingresses:1 ~max_upstream_q:8 in
  ignore (Pause_counter.incr pc ~ingress:0 ~upstream_q:1);
  ignore (Pause_counter.incr pc ~ingress:0 ~upstream_q:5);
  check Alcotest.(list int) "paused set" [ 1; 5 ] (Pause_counter.paused_queues pc ~ingress:0)

let prop_pause_counter_invariant =
  QCheck.Test.make ~name:"pause counter total equals outstanding increments" ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 0 7)))
    (fun ops ->
      let pc = Pause_counter.create ~ingresses:4 ~max_upstream_q:8 in
      let outstanding = ref [] in
      let n = ref 0 in
      List.iter
        (fun (ingress, upstream_q) ->
          (* randomly interleave: even ops increment, odd pop one outstanding *)
          if !n mod 3 < 2 then begin
            ignore (Pause_counter.incr pc ~ingress ~upstream_q);
            outstanding := (ingress, upstream_q) :: !outstanding
          end
          else begin
            match !outstanding with
            | (i, q) :: rest ->
              ignore (Pause_counter.decr pc ~ingress:i ~upstream_q:q);
              outstanding := rest
            | [] -> ()
          end;
          incr n)
        ops;
      Pause_counter.total pc = List.length !outstanding)

(* -------------------------------- DQA ------------------------------ *)

let test_dqa_prefers_empty () =
  let rng = Bfc_util.Rng.create 1 in
  let d = Dqa.create ~egresses:1 ~queues:4 ~policy:Dqa.Dynamic ~rng in
  let q1 = Dqa.assign d ~egress:0 ~fid_hash:100 in
  Dqa.mark_occupied d ~egress:0 ~queue:q1;
  let q2 = Dqa.assign d ~egress:0 ~fid_hash:200 in
  Alcotest.(check bool) "distinct queues while available" true (q1 <> q2);
  Dqa.mark_occupied d ~egress:0 ~queue:q2;
  check Alcotest.int "two empty left" 2 (Dqa.empty_count d ~egress:0)

let test_dqa_random_fallback_in_range () =
  let rng = Bfc_util.Rng.create 2 in
  let d = Dqa.create ~egresses:1 ~queues:3 ~policy:Dqa.Dynamic ~rng in
  for q = 0 to 2 do
    Dqa.mark_occupied d ~egress:0 ~queue:q
  done;
  for i = 0 to 50 do
    let q = Dqa.assign d ~egress:0 ~fid_hash:i in
    Alcotest.(check bool) "in range" true (q >= 0 && q < 3)
  done

let test_dqa_stochastic_static () =
  let rng = Bfc_util.Rng.create 3 in
  let d = Dqa.create ~egresses:1 ~queues:8 ~policy:Dqa.Stochastic ~rng in
  check Alcotest.int "hash mod queues" (13 mod 8) (Dqa.assign d ~egress:0 ~fid_hash:13);
  check Alcotest.int "same hash same queue" (Dqa.assign d ~egress:0 ~fid_hash:13)
    (Dqa.assign d ~egress:0 ~fid_hash:13)

let test_dqa_single () =
  let rng = Bfc_util.Rng.create 4 in
  let d = Dqa.create ~egresses:1 ~queues:8 ~policy:Dqa.Single ~rng in
  check Alcotest.int "always 0" 0 (Dqa.assign d ~egress:0 ~fid_hash:4242)

let prop_dqa_no_sharing_when_flows_fit =
  QCheck.Test.make ~name:"dynamic assignment never shares while queues remain" ~count:100
    QCheck.(int_range 1 16)
    (fun n_flows ->
      let rng = Bfc_util.Rng.create 5 in
      let d = Dqa.create ~egresses:1 ~queues:16 ~policy:Dqa.Dynamic ~rng in
      let used = Hashtbl.create 16 in
      let ok = ref true in
      for i = 1 to n_flows do
        let q = Dqa.assign d ~egress:0 ~fid_hash:(i * 131) in
        if Hashtbl.mem used q then ok := false;
        Hashtbl.replace used q ();
        Dqa.mark_occupied d ~egress:0 ~queue:q
      done;
      !ok)

(* ----------------------------- Threshold --------------------------- *)

let test_threshold_formula () =
  (* HRTT 2us at 100G: 1-hop BDP = 2000ns x 12.5 B/ns = 25 KB *)
  check Alcotest.int "N=1" 25_000 (Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:1 ~factor:1.0);
  check Alcotest.int "N=2 halves" 12_500
    (Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:2 ~factor:1.0);
  check Alcotest.int "N=0 clamps to 1" 25_000
    (Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:0 ~factor:1.0);
  check Alcotest.int "factor scales" 50_000
    (Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:1 ~factor:2.0)

let test_threshold_table_matches () =
  let tbl = Threshold.table ~hrtt:2000 ~gbps:100.0 ~max_active:32 ~factor:1.0 in
  for n = 1 to 32 do
    check Alcotest.int
      (Printf.sprintf "table n=%d" n)
      (Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:n ~factor:1.0)
      (Threshold.lookup tbl ~n_active:n)
  done;
  check Alcotest.int "clamps above" (Threshold.lookup tbl ~n_active:32)
    (Threshold.lookup tbl ~n_active:1000)

(* -------------------------- Dataplane e2e -------------------------- *)

(* Two switches in series with one sender and receiver; flood the second
   hop so the first hop's queue is paused and then resumed. *)
let mk_chain () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let s0 = Topology.Builder.add_host b ~name:"s0" in
  let s1 = Topology.Builder.add_host b ~name:"s1" in
  let sw1 = Topology.Builder.add_switch b ~name:"sw1" in
  let sw2 = Topology.Builder.add_switch b ~name:"sw2" in
  let r = Topology.Builder.add_host b ~name:"r" in
  Topology.Builder.link b s0 sw1 ~gbps:100.0 ~prop:(Time.us 1.0);
  Topology.Builder.link b s1 sw2 ~gbps:100.0 ~prop:(Time.us 1.0);
  Topology.Builder.link b sw1 sw2 ~gbps:100.0 ~prop:(Time.us 1.0);
  Topology.Builder.link b sw2 r ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  (sim, t, s0, s1, sw1, sw2, r)

let attach_bfc sim t sw_id =
  let cfg = { Switch.default_config with Switch.queues_per_port = 8 } in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  let sw =
    Switch.create ~sim ~node:(Topology.node t sw_id) ~ports:(Topology.ports t sw_id) ~config:cfg
      ~route ()
  in
  let dp = Dataplane.attach sw { Dataplane.default_config with Dataplane.max_upstream_q = 16 } in
  (sw, dp)

let test_dataplane_pause_resume_cycle () =
  let sim, t, s0, s1, sw1_id, sw2_id, r = mk_chain () in
  let _sw1, dp1 = attach_bfc sim t sw1_id in
  let _sw2, dp2 = attach_bfc sim t sw2_id in
  (* hosts: raw senders; r absorbs; s0/s1 count pauses *)
  (Topology.node t r).Node.handler <- (fun ~in_port:_ _ -> ());
  (Topology.node t s0).Node.handler <- (fun ~in_port:_ _ -> ());
  (Topology.node t s1).Node.handler <- (fun ~in_port:_ _ -> ());
  let f0 = Flow.make ~id:100 ~src:s0 ~dst:r ~size:1_000_000 ~arrival:0 () in
  let f1 = Flow.make ~id:101 ~src:s1 ~dst:r ~size:1_000_000 ~arrival:0 () in
  (* both flows blast 200 packets at line rate; they collide at sw2->r *)
  let blast src f =
    let port = (Topology.ports t src).(0) in
    let k = ref 0 in
    let rec send () =
      if !k < 200 then begin
        if not (Port.busy port) then begin
          let p = Packet.data ~flow:f ~seq:(!k * 1000) ~payload:1000 () in
          p.Packet.upstream_q <- 1;
          (* pretend NIC queue 1 *)
          Port.send port p;
          incr k
        end;
        ignore (Sim.after sim 84 send)
      end
    in
    send ()
  in
  blast s0 f0;
  blast s1 f1;
  ignore (Sim.run sim ~until:(Time.ms 2.0));
  let st2 = Dataplane.stats dp2 in
  Alcotest.(check bool) "sw2 paused upstream" true (st2.Dataplane.pauses_sent > 0);
  check Alcotest.int "every pause resumed" st2.Dataplane.pauses_sent st2.Dataplane.resumes_sent;
  check Alcotest.int "pause counters drain to zero" 0
    (Pause_counter.total (Dataplane.pause_counters dp2));
  check Alcotest.int "sw1 counters drain too" 0
    (Pause_counter.total (Dataplane.pause_counters dp1))

let test_dataplane_threshold_tracks_n_active () =
  let sim, t, _s0, _s1, sw1_id, _sw2_id, _r = mk_chain () in
  let sw1, dp1 = attach_bfc sim t sw1_id in
  ignore sw1;
  (* empty egress: N_active 0 -> Th = full 1-hop BDP (HRTT 2us @100G) *)
  check Alcotest.int "Th at idle" 25_000 (Dataplane.threshold dp1 ~egress:0)

let test_dataplane_classify_separates_flows () =
  let sim, t, s0, _s1, sw1_id, _sw2_id, r = mk_chain () in
  let sw1, _dp1 = attach_bfc sim t sw1_id in
  (* deliver two different flows' packets directly into sw1 and check they
     land in different queues (dynamic assignment) *)
  (Topology.node t r).Node.handler <- (fun ~in_port:_ _ -> ());
  let deliver f =
    let p = Packet.data ~flow:f ~seq:0 ~payload:1000 () in
    p.Packet.upstream_q <- 0;
    Node.deliver (Topology.node t sw1_id) ~in_port:0 p
  in
  let fa = Flow.make ~id:201 ~src:s0 ~dst:r ~size:10_000 ~arrival:0 () in
  let fb = Flow.make ~id:202 ~src:s0 ~dst:r ~size:10_000 ~arrival:0 () in
  deliver fa;
  deliver fb;
  (* the egress to sw2 now holds 2 packets; with dynamic DQA they are in two
     distinct queues *)
  let egress = ref (-1) in
  Array.iteri
    (fun i p -> if (Port.peer p).Node.id <> s0 then egress := i)
    (Topology.ports t sw1_id);
  ignore (Sim.run sim ~until:50);
  (* one may already be serializing; n_active counts the one still queued *)
  Alcotest.(check bool) "no sharing" true (Switch.n_active sw1 ~egress:!egress <= 2)

(* ------------------------------ Deadlock --------------------------- *)

let test_deadlock_clos_acyclic () =
  let sim = Sim.create () in
  let cl = Topology.clos sim ~spines:2 ~tors:3 ~hosts_per_tor:2 ~gbps:100.0 ~prop:1000 in
  let g = Deadlock.build cl.Topology.t in
  Alcotest.(check bool) "clos has edges" true (Deadlock.n_edges g > 0);
  Alcotest.(check bool) "clos acyclic" false (Deadlock.has_cycle g);
  check Alcotest.int "nothing to elide" 0 (List.length (Deadlock.dangerous_edges g))

let test_deadlock_synthetic_cycle () =
  let g = Deadlock.create ~n:3 in
  Deadlock.add_edge g ~src:0 ~dst:1;
  Deadlock.add_edge g ~src:1 ~dst:2;
  Alcotest.(check bool) "no cycle yet" false (Deadlock.has_cycle g);
  Deadlock.add_edge g ~src:2 ~dst:0;
  Alcotest.(check bool) "cycle" true (Deadlock.has_cycle g);
  check Alcotest.int "all three edges dangerous" 3 (List.length (Deadlock.dangerous_edges g));
  match Deadlock.find_cycle g with
  | Some c -> Alcotest.(check bool) "witness length 3" true (List.length c = 3)
  | None -> Alcotest.fail "expected witness"

let test_deadlock_dedup_edges () =
  let g = Deadlock.create ~n:2 in
  Deadlock.add_edge g ~src:0 ~dst:1;
  Deadlock.add_edge g ~src:0 ~dst:1;
  check Alcotest.int "deduped" 1 (Deadlock.n_edges g)

let test_deadlock_ring_filter () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let n = 5 in
  let sws = Array.init n (fun i -> Topology.Builder.add_switch b ~name:(Printf.sprintf "r%d" i)) in
  Array.iteri
    (fun i sw ->
      let h = Topology.Builder.add_host b ~name:(Printf.sprintf "h%d" i) in
      Topology.Builder.link b h sw ~gbps:100.0 ~prop:1000)
    sws;
  for i = 0 to n - 1 do
    Topology.Builder.link b sws.(i) sws.((i + 1) mod n) ~gbps:100.0 ~prop:1000
  done;
  let t = Topology.Builder.finish b in
  let g = Deadlock.build t in
  Alcotest.(check bool) "ring cyclic" true (Deadlock.has_cycle g);
  let dangerous = Deadlock.dangerous_edges g in
  Alcotest.(check bool) "has dangerous edges" true (dangerous <> []);
  (* the filter must disallow exactly the dangerous edges *)
  let filter = Deadlock.make_filter t g ~sw:sws.(0) in
  let any_blocked = ref false in
  let ports0 = Topology.ports t sws.(0) in
  for i = 0 to Array.length ports0 - 1 do
    for j = 0 to Array.length ports0 - 1 do
      if i <> j && not (filter ~in_port:i ~egress:j) then any_blocked := true
    done
  done;
  Alcotest.(check bool) "filter blocks something on the ring" true !any_blocked

let prop_deadlock_random_dag_acyclic =
  QCheck.Test.make ~name:"graphs with forward-only edges are acyclic" ~count:100
    QCheck.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let g = Deadlock.create ~n:20 in
      List.iter
        (fun (a, b) -> if a < b then Deadlock.add_edge g ~src:a ~dst:b)
        pairs;
      not (Deadlock.has_cycle g))

(* Naive reachability model: a cycle exists iff some vertex reaches itself
   through at least one edge. Quadratic, but obviously correct. *)
let model_has_cycle n edges =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> if not (List.mem b adj.(a)) then adj.(a) <- b :: adj.(a)) edges;
  let reaches src target =
    let seen = Array.make n false in
    let rec go u =
      List.exists
        (fun v ->
          v = target
          || (not seen.(v))
             && begin
                  seen.(v) <- true;
                  go v
                end)
        adj.(u)
    in
    go src
  in
  List.exists (fun v -> reaches v v) (List.init n (fun i -> i))

(* Self-edges are filtered: a port never feeds itself in the domain. *)
let random_graph pairs =
  let edges = List.filter (fun (a, b) -> a <> b) pairs in
  let g = Deadlock.create ~n:12 in
  List.iter (fun (a, b) -> Deadlock.add_edge g ~src:a ~dst:b) edges;
  (g, edges)

let prop_deadlock_matches_model =
  QCheck.Test.make ~name:"has_cycle agrees with naive DFS model" ~count:300
    QCheck.(list (pair (int_range 0 11) (int_range 0 11)))
    (fun pairs ->
      let g, edges = random_graph pairs in
      Deadlock.has_cycle g = model_has_cycle 12 edges)

let prop_deadlock_witness_is_cycle =
  QCheck.Test.make ~name:"find_cycle witness is a real simple cycle" ~count:300
    QCheck.(list (pair (int_range 0 11) (int_range 0 11)))
    (fun pairs ->
      let g, _ = random_graph pairs in
      let es = Deadlock.edges g in
      let has_edge a b = List.mem (a, b) es in
      match Deadlock.find_cycle g with
      | None -> not (Deadlock.has_cycle g)
      | Some [] -> false
      | Some (v0 :: _ as c) ->
        let rec chained = function
          | [ last ] -> has_edge last v0
          | a :: (b :: _ as rest) -> has_edge a b && chained rest
          | [] -> false
        in
        Deadlock.has_cycle g
        && List.length c >= 2
        && chained c
        && List.length (List.sort_uniq compare c) = List.length c)

(* ------------------------------- Models ---------------------------- *)

let test_model_headline_claim () =
  (* Th = 1-hop BDP => worst-case idle fraction exactly 20% at x = 2 *)
  Alcotest.(check (float 1e-9)) "worst x" 2.0 (Model.worst_x ~th_ratio:1.0);
  Alcotest.(check (float 1e-9)) "max 20%" 0.2 (Model.max_ef ~th_ratio:1.0);
  Alcotest.(check (float 1e-3)) "x=1.1 gives ~7.6%" 0.0756 (Model.ef ~x:1.1 ~th_ratio:1.0)

let test_model_monotone_in_th () =
  let prev = ref 1.0 in
  List.iter
    (fun th ->
      let v = Model.max_ef ~th_ratio:th in
      Alcotest.(check bool) "decreasing in Th" true (v < !prev);
      prev := v)
    [ 0.5; 1.0; 2.0; 4.0 ]

let prop_model_worst_x_maximizes =
  QCheck.Test.make ~name:"ef(x) <= ef(worst_x) for all x" ~count:200
    QCheck.(pair (float_range 1.01 10.0) (float_range 0.1 8.0))
    (fun (x, th_ratio) ->
      Model.ef ~x ~th_ratio <= Model.max_ef ~th_ratio +. 1e-9)

let test_model_phases () =
  let p1, p2, p3 = Model.phase_durations ~x:2.0 ~th_ratio:1.0 in
  Alcotest.(check (float 1e-9)) "build-up" 2.0 p1;
  Alcotest.(check (float 1e-9)) "drain" 2.0 p2;
  Alcotest.(check (float 1e-9)) "idle = 1 HRTT" 1.0 p3;
  Alcotest.(check (float 1e-9)) "ef = p3/sum" 0.2 (p3 /. (p1 +. p2 +. p3))

let test_active_flows_theory () =
  Alcotest.(check (float 1e-9)) "mean at 0.9" 9.0 (Active_flows.mean ~rho:0.9);
  Alcotest.(check (float 1e-9)) "pmf 0" 0.1 (Active_flows.pmf ~rho:0.9 0);
  Alcotest.(check (float 1e-6)) "cdf large n -> 1" 1.0 (Active_flows.cdf ~rho:0.5 50);
  check Alcotest.int "quantile 0.99 at rho=.5" 6 (Active_flows.quantile ~rho:0.5 ~p:0.99)

let prop_active_flows_pmf_sums =
  QCheck.Test.make ~name:"geometric pmf sums to ~1" ~count:50
    QCheck.(float_range 0.05 0.95)
    (fun rho ->
      let s = ref 0.0 in
      for n = 0 to 2000 do
        s := !s +. Active_flows.pmf ~rho n
      done;
      Float.abs (!s -. 1.0) < 1e-3)

let suite =
  [
    ("flow table sizing", `Quick, test_flow_table_sizing);
    ("flow table slots", `Quick, test_flow_table_same_slot_same_entry);
    ("flow table occupied", `Quick, test_flow_table_occupied);
    ("pause counter edges", `Quick, test_pause_counter_edges);
    ("pause counter underflow", `Quick, test_pause_counter_underflow);
    ("pause counter bitmap", `Quick, test_pause_counter_bitmap);
    ("dqa prefers empty", `Quick, test_dqa_prefers_empty);
    ("dqa random fallback", `Quick, test_dqa_random_fallback_in_range);
    ("dqa stochastic", `Quick, test_dqa_stochastic_static);
    ("dqa single", `Quick, test_dqa_single);
    ("threshold formula", `Quick, test_threshold_formula);
    ("threshold table", `Quick, test_threshold_table_matches);
    ("dataplane pause/resume cycle", `Quick, test_dataplane_pause_resume_cycle);
    ("dataplane threshold", `Quick, test_dataplane_threshold_tracks_n_active);
    ("dataplane classify separates", `Quick, test_dataplane_classify_separates_flows);
    ("deadlock clos acyclic", `Quick, test_deadlock_clos_acyclic);
    ("deadlock synthetic cycle", `Quick, test_deadlock_synthetic_cycle);
    ("deadlock dedup", `Quick, test_deadlock_dedup_edges);
    ("deadlock ring filter", `Quick, test_deadlock_ring_filter);
    ("model headline 20%", `Quick, test_model_headline_claim);
    ("model monotone", `Quick, test_model_monotone_in_th);
    ("model phases", `Quick, test_model_phases);
    ("active flows theory", `Quick, test_active_flows_theory);
    QCheck_alcotest.to_alcotest prop_pause_counter_invariant;
    QCheck_alcotest.to_alcotest prop_dqa_no_sharing_when_flows_fit;
    QCheck_alcotest.to_alcotest prop_deadlock_random_dag_acyclic;
    QCheck_alcotest.to_alcotest prop_deadlock_matches_model;
    QCheck_alcotest.to_alcotest prop_deadlock_witness_is_cycle;
    QCheck_alcotest.to_alcotest prop_model_worst_x_maximizes;
    QCheck_alcotest.to_alcotest prop_active_flows_pmf_sums;
  ]
