(* Second test battery: BFC variants (sampling, incast label, sticky
   reassignment, bitmap refresh, th factor), scheme naming, metrics
   filtering, end-to-end runs of receiver-driven schemes on micro
   topologies, and additional properties. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Dataplane = Bfc_core.Dataplane
module Threshold = Bfc_core.Threshold
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Exp_common = Bfc_sim.Exp_common
module Host = Bfc_transport.Host
module Dist = Bfc_workload.Dist

let check = Alcotest.check

(* --------------------- BFC dataplane variants ---------------------- *)

(* One switch with a sender and receiver; deliver packets by hand. *)
let mk_one_switch ?(queues = 8) ?(dpcfg = Dataplane.default_config) () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let cfg = { Switch.default_config with Switch.queues_per_port = queues } in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  let sw =
    Switch.create ~sim
      ~node:(Topology.node t st.Topology.st_switch)
      ~ports:(Topology.ports t st.Topology.st_switch)
      ~config:cfg ~route ()
  in
  let dp = Dataplane.attach sw { dpcfg with Dataplane.max_upstream_q = 16 } in
  (Topology.node t st.Topology.st_receiver).Node.handler <- (fun ~in_port:_ _ -> ());
  (Topology.node t st.Topology.st_senders.(0)).Node.handler <- (fun ~in_port:_ _ -> ());
  (Topology.node t st.Topology.st_senders.(1)).Node.handler <- (fun ~in_port:_ _ -> ());
  (sim, st, t, sw, dp)

let inject t st pkt = Node.deliver (Topology.node t st.Topology.st_switch) ~in_port:0 pkt

let mk_data flow seq =
  let p = Packet.data ~flow ~seq ~payload:1000 () in
  p.Packet.upstream_q <- 1;
  p

let test_sticky_assignment_retained () =
  let sim, st, t, _sw, dp = mk_one_switch () in
  let f = Flow.make ~id:900 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1_000_000 ~arrival:0 () in
  inject t st (mk_data f 0);
  let ft = Dataplane.flow_table dp in
  (* the receiver-facing egress index: probe via the entry the packet hit *)
  let find_entry () =
    let found = ref None in
    for e = 0 to 2 do
      let entry = Bfc_core.Flow_table.entry ft ~egress:e ~fid_hash:(Flow.hash f) in
      if entry.Bfc_core.Flow_table.q >= 0 then found := Some (e, entry)
    done;
    !found
  in
  (match find_entry () with
  | None -> Alcotest.fail "no assignment recorded"
  | Some (_, entry) ->
    let q0 = entry.Bfc_core.Flow_table.q in
    (* drain, then send again shortly after (within 2 HRTT = 4 us) *)
    ignore (Sim.run sim ~until:(Time.us 3.0));
    check Alcotest.int "entry drained" 0 entry.Bfc_core.Flow_table.size;
    inject t st (mk_data f 1000);
    check Alcotest.int "sticky: same queue reused" q0 entry.Bfc_core.Flow_table.q;
    (* now wait well beyond the sticky threshold; a new packet may reassign *)
    ignore (Sim.run sim ~until:(Time.ms 1.0));
    inject t st (mk_data f 2000);
    Alcotest.(check bool) "assignment still valid" true (entry.Bfc_core.Flow_table.q >= 0))

let test_incast_label_queue_zero () =
  let sim, st, t, sw, _dp =
    mk_one_switch ~dpcfg:{ Dataplane.default_config with Dataplane.incast_label = true } ()
  in
  let f =
    Flow.make ~id:901 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver
      ~size:1_000_000 ~arrival:0 ~is_incast:true ()
  in
  ignore sim;
  (* find receiver egress *)
  let egress = ref (-1) in
  Array.iteri
    (fun i p -> if (Port.peer p).Node.id = st.Topology.st_receiver then egress := i)
    (Topology.ports t st.Topology.st_switch);
  inject t st (mk_data f 0);
  inject t st (mk_data f 1000);
  (* one packet is serializing; the other must sit in queue 0 *)
  let q0 = Switch.queue sw ~egress:!egress ~queue:0 in
  Alcotest.(check bool) "incast flow pinned to queue 0" true (Bfc_switch.Fifo.length q0 >= 1)

let test_sampling_keeps_tables_sane () =
  let sim, st, t, _sw, dp =
    mk_one_switch ~dpcfg:{ Dataplane.default_config with Dataplane.sampling = 0.5 } ()
  in
  let f = Flow.make ~id:902 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1_000_000 ~arrival:0 () in
  for k = 0 to 49 do
    inject t st (mk_data f (k * 1000))
  done;
  ignore (Sim.run_until_idle sim);
  (* all packets forwarded; the flow table must have drained to zero *)
  let ft = Dataplane.flow_table dp in
  for e = 0 to 2 do
    let entry = Bfc_core.Flow_table.entry ft ~egress:e ~fid_hash:(Flow.hash f) in
    check Alcotest.int "ft size drained" 0 entry.Bfc_core.Flow_table.size
  done;
  check Alcotest.int "pause counters drained" 0
    (Bfc_core.Pause_counter.total (Dataplane.pause_counters dp))

let test_fixed_th_overrides () =
  let _, _, _, _, dp =
    mk_one_switch ~dpcfg:{ Dataplane.default_config with Dataplane.fixed_th = Some 12345 } ()
  in
  check Alcotest.int "fixed threshold" 12345 (Dataplane.threshold dp ~egress:0)

let test_th_factor_scales () =
  let _, _, _, _, dp1 = mk_one_switch () in
  let _, _, _, _, dp2 =
    mk_one_switch ~dpcfg:{ Dataplane.default_config with Dataplane.th_factor = 2.0 } ()
  in
  check Alcotest.int "double factor doubles Th"
    (2 * Dataplane.threshold dp1 ~egress:0)
    (Dataplane.threshold dp2 ~egress:0)

let test_bitmap_refresh_repauses () =
  (* adversarial: resume a queue by hand even though the downstream's pause
     counter is non-zero; the periodic bitmap must re-pause it *)
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let up = Topology.Builder.add_switch b ~name:"up" in
  let down = Topology.Builder.add_switch b ~name:"down" in
  let h = Topology.Builder.add_host b ~name:"h" in
  let r = Topology.Builder.add_host b ~name:"r" in
  Topology.Builder.link b h up ~gbps:100.0 ~prop:(Time.us 1.0);
  Topology.Builder.link b up down ~gbps:100.0 ~prop:(Time.us 1.0);
  Topology.Builder.link b down r ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  let route sw ~in_port:_ pkt =
    (Topology.candidates t ~node:(Switch.node_id sw) ~dst:pkt.Packet.dst).(0)
  in
  let cfg = { Switch.default_config with Switch.queues_per_port = 4 } in
  let mk id dpcfg =
    let sw = Switch.create ~sim ~node:(Topology.node t id) ~ports:(Topology.ports t id) ~config:cfg ~route () in
    (sw, Dataplane.attach sw { dpcfg with Dataplane.max_upstream_q = 8 })
  in
  let up_sw, _ = mk up Dataplane.default_config in
  let _, down_dp =
    mk down
      { Dataplane.default_config with Dataplane.bitmap_period = Some (Time.us 20.0) }
  in
  (Topology.node t r).Node.handler <- (fun ~in_port:_ _ -> ());
  (Topology.node t h).Node.handler <- (fun ~in_port:_ _ -> ());
  (* force a pause state at down: inject packets with tiny fixed Th *)
  ignore down_dp;
  let f = Flow.make ~id:903 ~src:h ~dst:r ~size:1_000_000 ~arrival:0 () in
  (* flood down via up so down counts and pauses up's queue *)
  for k = 0 to 60 do
    ignore
      (Sim.at sim (k * 84) (fun () ->
           let p = mk_data f (k * 1000) in
           Node.deliver (Topology.node t up) ~in_port:0 p))
  done;
  ignore (Sim.run sim ~until:(Time.us 30.0));
  (* find up's egress toward down and the paused queue *)
  let up_egress = ref (-1) in
  Array.iteri
    (fun i p -> if (Port.peer p).Node.id = down then up_egress := i)
    (Topology.ports t up);
  let paused_q = ref (-1) in
  Array.iteri
    (fun qi q -> if q.Bfc_switch.Fifo.paused then paused_q := qi)
    (Switch.queues up_sw ~egress:!up_egress);
  if !paused_q >= 0 then begin
    (* adversarially unpause; the bitmap refresh must re-pause within 20us *)
    Switch.set_queue_paused up_sw ~egress:!up_egress ~queue:!paused_q false;
    ignore (Sim.run sim ~until:(Sim.now sim + Time.us 25.0));
    let q = Switch.queue up_sw ~egress:!up_egress ~queue:!paused_q in
    if Bfc_core.Pause_counter.total (Dataplane.pause_counters down_dp) > 0 then
      Alcotest.(check bool) "bitmap repaused the queue" true q.Bfc_switch.Fifo.paused
  end
  (* if nothing was paused the flood drained early; the invariant tests in
     test_bfc cover the pause path itself *)

(* --------------------------- Scheme names -------------------------- *)

let test_scheme_names () =
  check Alcotest.string "bfc" "BFC" (Scheme.name Scheme.bfc);
  check Alcotest.string "bfc128" "BFC (128)" (Scheme.name (Scheme.bfc_q 128));
  check Alcotest.string "srf" "BFC-SRF" (Scheme.name Scheme.bfc_srf);
  check Alcotest.string "homa" "Homa" (Scheme.name Scheme.homa);
  check Alcotest.string "homa ecmp" "Homa-ECMP" (Scheme.name Scheme.homa_ecmp);
  check Alcotest.string "hpcc-pfc+sfq" "HPCC-PFC+SFQ"
    (Scheme.name (Scheme.Hpcc_pfc { sfq = true; dqa = false }));
  Alcotest.(check bool) "stochastic tagged" true
    (String.length
       (Scheme.name (Scheme.Bfc { Scheme.bfc_default with Scheme.assignment = Bfc_core.Dqa.Stochastic }))
    > 3)

let test_experiments_registry () =
  let module E = Bfc_sim.Experiments in
  Alcotest.(check bool) "30+ targets" true (List.length E.all >= 30);
  Alcotest.(check bool) "fig9 exists" true (E.find "fig9" <> None);
  Alcotest.(check bool) "unknown absent" true (E.find "fig99" = None);
  (* names unique *)
  let names = E.names () in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_profile_of_string () =
  Alcotest.(check bool) "quick" true (Exp_common.profile_of_string "quick" = Exp_common.Quick);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exp_common.profile_of_string "warp");
       false
     with Invalid_argument _ -> true)

(* ------------------------ Metrics filtering ------------------------ *)

let test_metrics_incast_separation () =
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.bfc) with
        Exp_common.sp_dist = Dist.google;
        sp_incast = Some { Exp_common.degree = 5; agg_frac_of_paper = 0.5 };
      }
  in
  let env = r.Exp_common.env and flows = r.Exp_common.flows in
  let bg = Metrics.fct_table env ~incast:false flows in
  let inc = Metrics.fct_table env ~incast:true flows in
  let count t = List.fold_left (fun a s -> a + s.Metrics.count) 0 t in
  let n_incast_flows = List.length (List.filter (fun f -> f.Flow.is_incast) flows) in
  check Alcotest.int "incast bucketed separately" n_incast_flows (count inc);
  Alcotest.(check bool) "background nonempty" true (count bg > 100)

let test_metrics_since_filter () =
  let r = Exp_common.run_std { (Exp_common.std Exp_common.Smoke Scheme.bfc) with Exp_common.sp_dist = Dist.google } in
  let all = Metrics.fct_table r.Exp_common.env ~since:0 r.Exp_common.flows in
  let late = Metrics.fct_table r.Exp_common.env ~since:(Time.us 200.0) r.Exp_common.flows in
  let count t = List.fold_left (fun a s -> a + s.Metrics.count) 0 t in
  Alcotest.(check bool) "since filters" true (count late < count all)

let test_long_avg_threshold () =
  let r = Exp_common.run_std { (Exp_common.std Exp_common.Smoke Scheme.bfc) with Exp_common.sp_dist = Dist.google } in
  (* google's max flow is 3MB; with the default >3MB threshold there are
     few or no long flows, with 100KB plenty *)
  let v = Metrics.long_avg r.Exp_common.env ~threshold:100_000 r.Exp_common.flows in
  Alcotest.(check bool) "long avg computable at 100K" true (Float.is_nan v = false && v >= 1.0)

(* --------------------- Receiver-driven micro runs ------------------- *)

let micro_run scheme =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:4 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme ~params:Runner.default_params in
  let ids = ref 0 in
  let flows =
    List.concat_map
      (fun i ->
        [
          Flow.make ~id:(incr ids; !ids) ~src:st.Topology.st_senders.(i)
            ~dst:st.Topology.st_receiver ~size:(50_000 * (i + 1)) ~arrival:(Time.us (float_of_int i)) ();
        ])
      [ 0; 1; 2 ]
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 2.0);
  Runner.drain env ~budget:(Time.ms 20.0);
  (env, flows)

let test_homa_micro_completes () =
  let env, flows = micro_run Scheme.homa in
  List.iter
    (fun f -> Alcotest.(check bool) "homa flow done" true (Flow.complete f))
    flows;
  check Alcotest.int "no drops" 0 (Runner.total_drops env)

let test_homa_srpt_favors_short () =
  let env, flows = micro_run Scheme.homa in
  ignore env;
  let by_size = List.sort (fun a b -> compare a.Flow.size b.Flow.size) flows in
  let shortest = List.hd by_size and longest = List.nth by_size (List.length by_size - 1) in
  Alcotest.(check bool) "shortest finishes first" true
    (Flow.fct shortest + shortest.Flow.arrival
    <= Flow.fct longest + longest.Flow.arrival)

let test_xpass_micro_completes () =
  let env, flows = micro_run Scheme.expresspass in
  List.iter (fun f -> Alcotest.(check bool) "xpass flow done" true (Flow.complete f)) flows;
  check Alcotest.int "no data drops" 0 (Runner.total_drops env)

let test_xpass_latency_floor () =
  (* xpass needs a credit round trip before data: FCT >= ~2x base RTT even
     for a tiny flow *)
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.expresspass ~params:Runner.default_params in
  let f = Flow.make ~id:1 ~src:st.Topology.st_senders.(0) ~dst:st.Topology.st_receiver ~size:1000 ~arrival:0 () in
  Runner.inject env [ f ];
  Runner.run env ~until:(Time.ms 1.0);
  Alcotest.(check bool) "completes" true (Flow.complete f);
  let rtt = Runner.base_rtt env in
  Alcotest.(check bool)
    (Printf.sprintf "credit rtt floor (fct %d vs rtt %d)" (Flow.fct f) rtt)
    true
    (Flow.fct f >= (3 * rtt) / 2)

let test_dcqcn_micro_completes () =
  let env, flows = micro_run Scheme.dcqcn in
  ignore env;
  List.iter (fun f -> Alcotest.(check bool) "dcqcn flow done" true (Flow.complete f)) flows

let test_bfc_nic_variant_completes () =
  let scheme =
    Scheme.Bfc
      { Scheme.bfc_default with Scheme.nic_respect_pause = false; window_cap = Some 1.0 }
  in
  let env, flows = micro_run scheme in
  List.iter (fun f -> Alcotest.(check bool) "bfc-nic done" true (Flow.complete f)) flows;
  check Alcotest.int "no drops" 0 (Runner.total_drops env)

(* ----------------------------- Properties -------------------------- *)

let prop_threshold_decreasing_in_n =
  QCheck.Test.make ~name:"Th decreases with more active queues" ~count:100
    QCheck.(pair (int_range 1 100) (int_range 1 100))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:hi ~factor:1.0
      <= Threshold.bytes ~hrtt:2000 ~gbps:100.0 ~n_active:lo ~factor:1.0)

let prop_dctcp_window_floor =
  QCheck.Test.make ~name:"dctcp window never drops below one MTU" ~count:100
    QCheck.(list (pair bool (int_range 0 100_000)))
    (fun acks ->
      let d = Bfc_transport.Dctcp.create ~mtu:1000 ~bdp:100_000 ~slow_start:false ~g:0.0625 in
      let una = ref 0 in
      List.iter
        (fun (marked, bytes) ->
          una := !una + bytes;
          Bfc_transport.Dctcp.on_ack d ~acked:bytes ~marked ~snd_una:!una
            ~snd_nxt:(!una + 100_000))
        acks;
      Bfc_transport.Dctcp.window d >= 1000)

let prop_ideal_fct_subadditive_in_path =
  QCheck.Test.make ~name:"ideal fct grows with distance" ~count:50
    QCheck.(int_range 1000 1_000_000)
    (fun size ->
      let sim = Sim.create () in
      let cl = Topology.clos sim ~spines:2 ~tors:2 ~hosts_per_tor:2 ~gbps:100.0 ~prop:1000 in
      let h = cl.Topology.cl_hosts in
      let near = Topology.ideal_fct cl.Topology.t ~src:h.(0) ~dst:h.(1) ~size ~mtu:1000 () in
      let far = Topology.ideal_fct cl.Topology.t ~src:h.(0) ~dst:h.(3) ~size ~mtu:1000 () in
      near < far)

let suite =
  [
    ("sticky assignment", `Quick, test_sticky_assignment_retained);
    ("incast label queue 0", `Quick, test_incast_label_queue_zero);
    ("sampling variant sane", `Quick, test_sampling_keeps_tables_sane);
    ("fixed th", `Quick, test_fixed_th_overrides);
    ("th factor", `Quick, test_th_factor_scales);
    ("bitmap refresh repauses", `Quick, test_bitmap_refresh_repauses);
    ("scheme names", `Quick, test_scheme_names);
    ("experiments registry", `Quick, test_experiments_registry);
    ("profile parsing", `Quick, test_profile_of_string);
    ("metrics incast separation", `Quick, test_metrics_incast_separation);
    ("metrics since filter", `Quick, test_metrics_since_filter);
    ("metrics long avg threshold", `Quick, test_long_avg_threshold);
    ("homa micro completes", `Quick, test_homa_micro_completes);
    ("homa srpt favors short", `Quick, test_homa_srpt_favors_short);
    ("xpass micro completes", `Quick, test_xpass_micro_completes);
    ("xpass latency floor", `Quick, test_xpass_latency_floor);
    ("dcqcn micro completes", `Quick, test_dcqcn_micro_completes);
    ("bfc-nic variant completes", `Quick, test_bfc_nic_variant_completes);
    QCheck_alcotest.to_alcotest prop_threshold_decreasing_in_n;
    QCheck_alcotest.to_alcotest prop_dctcp_window_floor;
    QCheck_alcotest.to_alcotest prop_ideal_fct_subadditive_in_path;
  ]
