(* Unit and property tests for Bfc_util. *)

module Rng = Bfc_util.Rng
module Heap = Bfc_util.Heap
module Wheel = Bfc_util.Wheel
module Int_table = Bfc_util.Int_table
module Bitset = Bfc_util.Bitset
module Stats = Bfc_util.Stats
module Histogram = Bfc_util.Histogram

let check = Alcotest.check
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.bits a and xb = Rng.bits b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits a);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.bits a) (Rng.bits b)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean ~5" true (Float.abs (mean -. 5.0) < 0.15)

let test_rng_lognormal_mean () =
  let r = Rng.create 13 in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.lognormal_mean r ~mean:10.0 ~sigma:1.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~10 (got %f)" mean)
    true
    (Float.abs (mean -. 10.0) < 0.5)

let test_rng_normal_moments () =
  let r = Rng.create 17 in
  let n = 100_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal r in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "var ~1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_int_extreme_bounds () =
  (* Powers of two take the mask path, [max_int] (not a power of two on
     63-bit ints) exercises rejection sampling on the widest bound. *)
  let r = Rng.create 41 in
  List.iter
    (fun n ->
      for _ = 1 to 1_000 do
        let v = Rng.int r n in
        Alcotest.(check bool) (Printf.sprintf "in [0,%d)" n) true (v >= 0 && v < n)
      done)
    [ 1; 2; 4; 64; 1 lsl 30; 1 lsl 61; max_int ]

let test_rng_int_bound_one () =
  let r = Rng.create 43 in
  for _ = 1 to 100 do
    check Alcotest.int "bound 1 is always 0" 0 (Rng.int r 1)
  done

let test_rng_bernoulli_invalid () =
  let r = Rng.create 47 in
  List.iter
    (fun (p, msg) ->
      Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (Rng.bernoulli r p)))
    [
      (-0.1, "Rng.bernoulli: probability -0.1 not in [0, 1]");
      (1.5, "Rng.bernoulli: probability 1.5 not in [0, 1]");
      (Float.nan, "Rng.bernoulli: probability nan not in [0, 1]");
    ]

let test_rng_bernoulli_endpoints () =
  let r = Rng.create 53 in
  let before = Rng.copy r in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0)
  done;
  (* The documented contract: degenerate coins leave the stream untouched. *)
  check Alcotest.int "endpoints consume no randomness" (Rng.bits before) (Rng.bits r)

let test_rng_split_deterministic () =
  let a = Rng.create 59 and b = Rng.create 59 in
  let ca = Rng.split a and cb = Rng.split b in
  for _ = 1 to 50 do
    check Alcotest.int "split children agree across runs" (Rng.bits ca) (Rng.bits cb)
  done

let test_rng_split_isolated () =
  let a = Rng.create 61 and b = Rng.create 61 in
  let ca = Rng.split a and cb = Rng.split b in
  ignore cb;
  for _ = 1 to 1_000 do
    ignore (Rng.bits ca)
  done;
  for _ = 1 to 50 do
    check Alcotest.int "parent stream unaffected by child draws" (Rng.bits a) (Rng.bits b)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------- Heap ------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p p) [ 5; 3; 8; 1; 9; 2 ];
  let out = ref [] in
  let rec go () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      go ()
    | None -> ()
  in
  go ();
  check Alcotest.(list int) "sorted ascending" [ 1; 2; 3; 5; 8; 9 ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:7 v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  check Alcotest.string "fifo a" "a" (pop ());
  check Alcotest.string "fifo b" "b" (pop ());
  check Alcotest.string "fifo c" "c" (pop ())

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Heap.push h ~priority:4 "x";
  (match Heap.peek h with
  | Some (4, "x") -> ()
  | _ -> Alcotest.fail "peek mismatch");
  check Alcotest.int "length unchanged by peek" 1 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h ~priority:x x) xs;
      let rec drain acc =
        match Heap.pop h with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* ------------------------------ Wheel ------------------------------ *)

let test_wheel_order () =
  let w = Wheel.create () in
  List.iter (fun p -> Wheel.push w ~priority:p p) [ 5; 3; 8; 1; 9; 2 ];
  let out = ref [] in
  while not (Wheel.is_empty w) do
    out := Wheel.pop_min_exn w :: !out
  done;
  check Alcotest.(list int) "sorted ascending" [ 1; 2; 3; 5; 8; 9 ] (List.rev !out)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  List.iter (fun v -> Wheel.push w ~priority:7 v) [ "a"; "b"; "c" ];
  check Alcotest.string "fifo a" "a" (Wheel.pop_min_exn w);
  check Alcotest.string "fifo b" "b" (Wheel.pop_min_exn w);
  check Alcotest.string "fifo c" "c" (Wheel.pop_min_exn w)

let test_wheel_head_time () =
  let w = Wheel.create () in
  check Alcotest.int "empty head" (-1) (Wheel.head_time w);
  Wheel.push w ~priority:42 "x";
  check Alcotest.int "head" 42 (Wheel.head_time w);
  check Alcotest.int "head does not pop" 1 (Wheel.length w);
  ignore (Wheel.pop_min_exn w);
  check Alcotest.int "drained" (-1) (Wheel.head_time w);
  Alcotest.check_raises "pop on empty" Wheel.Empty (fun () -> ignore (Wheel.pop_min_exn w))

let test_wheel_cascade_far_future () =
  (* deadlines spanning several digit levels, far beyond level 0 *)
  let w = Wheel.create () in
  let times = [ 0; 255; 256; 65_535; 65_536; 16_777_216; 1 lsl 40; (1 lsl 40) + 1 ] in
  List.iter (fun p -> Wheel.push w ~priority:p p) (List.rev times);
  let out = ref [] in
  while not (Wheel.is_empty w) do
    out := Wheel.pop_min_exn w :: !out
  done;
  check Alcotest.(list int) "cascades in order" times (List.rev !out)

let test_wheel_push_below_cursor () =
  (* peek far ahead (advancing the cursor), then push nearer-term work:
     the Sim.run pattern where flows are injected between run windows *)
  let w = Wheel.create () in
  Wheel.push w ~priority:10_000 10_000;
  check Alcotest.int "cursor ahead" 10_000 (Wheel.head_time w);
  Wheel.push w ~priority:10_000 10_000;
  Wheel.push w ~priority:9_999 9_999;
  check Alcotest.int "staged below cursor" 9_999 (Wheel.pop_min_exn w);
  check Alcotest.int "then first 10k" 10_000 (Wheel.pop_min_exn w);
  check Alcotest.int "then second 10k" 10_000 (Wheel.pop_min_exn w);
  check Alcotest.bool "empty" true (Wheel.is_empty w)

let test_wheel_garbage_purge () =
  (* dead entries parked in upper levels are purged by the cascade and
     never popped; live ones survive *)
  let dead = Hashtbl.create 8 in
  let w = Wheel.create ~garbage:(Hashtbl.mem dead) () in
  List.iter (fun p -> Wheel.push w ~priority:p p) [ 70_000; 70_001; 70_002 ];
  Hashtbl.add dead 70_001 ();
  check Alcotest.int "first live" 70_000 (Wheel.pop_min_exn w);
  check Alcotest.int "dead one purged" 70_002 (Wheel.pop_min_exn w);
  check Alcotest.bool "purge fixed the size" true (Wheel.is_empty w);
  (* purge-to-empty: head_time must report the drain *)
  Wheel.push w ~priority:200_000 200_000;
  Hashtbl.add dead 200_000 ();
  check Alcotest.int "all-garbage wheel drains" (-1) (Wheel.head_time w)

let test_wheel_clear () =
  let w = Wheel.create () in
  for i = 0 to 999 do
    Wheel.push w ~priority:(i * 97) i
  done;
  Wheel.clear w;
  check Alcotest.bool "cleared" true (Wheel.is_empty w);
  Wheel.push w ~priority:3 33;
  check Alcotest.int "usable after clear" 33 (Wheel.pop_min_exn w)

(* The differential property: any monotone-nondecreasing push/pop trace
   pops identically from Heap and Wheel (values are distinct, so this
   checks the FIFO tie-break too). *)
let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel pops in heap order" ~count:300
    QCheck.(list (pair (int_range 0 5000) (int_range 0 3)))
    (fun ops ->
      let h = Heap.create () and w = Wheel.create () in
      let ok = ref true in
      let uid = ref 0 in
      let floor = ref 0 in
      List.iter
        (fun (dt, act) ->
          if act = 0 && Heap.length h > 0 then begin
            (* pop from both; the popped time raises the monotone floor *)
            let hv = Heap.pop_min_exn h in
            let wv = Wheel.pop_min_exn w in
            if hv <> wv then ok := false;
            floor := max !floor (hv lsr 16)
          end
          else begin
            (* push the same (priority, value) into both; encode the
               uid in the low bits so every value is unique *)
            incr uid;
            let p = !floor + dt in
            let v = (p lsl 16) lor (!uid land 0xFFFF) in
            Heap.push h ~priority:p v;
            Wheel.push w ~priority:p v
          end)
        ops;
      while Heap.length h > 0 do
        if Heap.pop_min_exn h <> Wheel.pop_min_exn w then ok := false
      done;
      Wheel.is_empty w && !ok)

(* ---------------------------- Int_table ---------------------------- *)

let test_int_table_basic () =
  let t = Int_table.create () in
  check Alcotest.int "empty" 0 (Int_table.length t);
  Int_table.set t 7 "seven";
  Int_table.set t 0 "zero";
  Int_table.set t (-3) "neg";
  check Alcotest.int "three" 3 (Int_table.length t);
  check Alcotest.(option string) "find 7" (Some "seven") (Int_table.find_opt t 7);
  check Alcotest.(option string) "find -3" (Some "neg") (Int_table.find_opt t (-3));
  check Alcotest.(option string) "miss" None (Int_table.find_opt t 99);
  Int_table.set t 7 "SEVEN";
  check Alcotest.int "overwrite keeps count" 3 (Int_table.length t);
  check Alcotest.(option string) "overwritten" (Some "SEVEN") (Int_table.find_opt t 7);
  Int_table.remove t 7;
  check Alcotest.bool "removed" false (Int_table.mem t 7);
  Int_table.remove t 99 (* absent: no-op *);
  check Alcotest.int "two left" 2 (Int_table.length t);
  Int_table.reset t;
  check Alcotest.int "reset" 0 (Int_table.length t);
  check Alcotest.(option string) "reset misses" None (Int_table.find_opt t 0)

let test_int_table_find_exn () =
  let t = Int_table.create ~size:4 () in
  Int_table.set t 5 17;
  check Alcotest.int "hit" 17 (Int_table.find_exn t 5);
  Alcotest.check_raises "miss raises" Not_found (fun () -> ignore (Int_table.find_exn t 6))

let test_int_table_growth () =
  let t = Int_table.create ~size:4 () in
  for k = 0 to 9_999 do
    Int_table.set t (k * 31) k
  done;
  check Alcotest.int "count" 10_000 (Int_table.length t);
  for k = 0 to 9_999 do
    assert (Int_table.find_exn t (k * 31) = k)
  done

(* model check vs Hashtbl, exercising backward-shift deletion under
   collision-heavy keys *)
let prop_int_table_model =
  QCheck.Test.make ~name:"int_table matches Hashtbl model" ~count:300
    QCheck.(list (pair (int_range 0 40) bool))
    (fun ops ->
      let t = Int_table.create ~size:4 () in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (k, add) ->
          if add then begin
            Int_table.set t k k;
            Hashtbl.replace m k k
          end
          else begin
            Int_table.remove t k;
            Hashtbl.remove m k
          end)
        ops;
      Int_table.length t = Hashtbl.length m
      && Hashtbl.fold (fun k v acc -> acc && Int_table.find_opt t k = Some v) m true)

let test_counter_semantics () =
  let c = Int_table.Counter.create () in
  check Alcotest.int "absent reads 0" 0 (Int_table.Counter.get c 5);
  Int_table.Counter.incr c 5;
  Int_table.Counter.incr c 5;
  Int_table.Counter.incr c 9;
  check Alcotest.int "two keys" 2 (Int_table.Counter.length c);
  check Alcotest.int "count 5" 2 (Int_table.Counter.get c 5);
  Int_table.Counter.decr c 5;
  check Alcotest.int "decremented" 1 (Int_table.Counter.get c 5);
  Int_table.Counter.decr c 5;
  check Alcotest.int "zero removes key" 1 (Int_table.Counter.length c);
  Int_table.Counter.decr c 5 (* absent: no-op *);
  Int_table.Counter.decr c 77 (* never present: no-op *);
  check Alcotest.int "still one key" 1 (Int_table.Counter.length c);
  Int_table.Counter.reset c;
  check Alcotest.int "reset" 0 (Int_table.Counter.length c)

(* ------------------------------ Bitset ----------------------------- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "initially clear" false (Bitset.mem b 50);
  Bitset.set b 50;
  Alcotest.(check bool) "set" true (Bitset.mem b 50);
  check Alcotest.int "cardinal" 1 (Bitset.cardinal b);
  Bitset.set b 50;
  check Alcotest.int "idempotent set" 1 (Bitset.cardinal b);
  Bitset.clear b 50;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 50);
  check Alcotest.int "cardinal zero" 0 (Bitset.cardinal b)

let test_bitset_first_set_rotation () =
  let b = Bitset.create 8 in
  Bitset.set b 2;
  Bitset.set b 6;
  check Alcotest.(option int) "from 0" (Some 2) (Bitset.first_set b ~from:0);
  check Alcotest.(option int) "from 3" (Some 6) (Bitset.first_set b ~from:3);
  check Alcotest.(option int) "wraps" (Some 2) (Bitset.first_set b ~from:7);
  Bitset.reset b;
  check Alcotest.(option int) "empty" None (Bitset.first_set b ~from:0)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.set b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.mem b 10))

let test_bitset_fill () =
  let b = Bitset.create 65 in
  Bitset.fill b;
  check Alcotest.int "all set" 65 (Bitset.cardinal b);
  check Alcotest.(list int) "to_list full" (List.init 65 (fun i -> i)) (Bitset.to_list b)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches a reference set" ~count:200
    QCheck.(list (pair bool (int_range 0 63)))
    (fun ops ->
      let b = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (set, i) ->
          if set then begin
            Bitset.set b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.clear b i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem model i) (List.init 64 (fun i -> i)))

(* ------------------------------ Stats ------------------------------ *)

let test_stats_basic () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  checkf "mean" 3.0 (Stats.Sample.mean s);
  checkf "min" 1.0 (Stats.Sample.min s);
  checkf "max" 5.0 (Stats.Sample.max s);
  checkf "p0" 1.0 (Stats.Sample.percentile s 0.0);
  checkf "p100" 5.0 (Stats.Sample.percentile s 100.0);
  checkf "p50" 3.0 (Stats.Sample.percentile s 50.0);
  checkf "p25 interp" 2.0 (Stats.Sample.percentile s 25.0)

let test_stats_empty () =
  let s = Stats.Sample.create () in
  Alcotest.(check bool) "empty" true (Stats.Sample.is_empty s);
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Stats.Sample.percentile: empty sample") (fun () ->
      ignore (Stats.Sample.percentile s 50.0))

let test_stats_stddev () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check bool) "stddev ~2.138" true (Float.abs (Stats.Sample.stddev s -. 2.138) < 0.01)

let test_running_matches_sample () =
  let r = Stats.Running.create () and s = Stats.Sample.create () in
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    let x = Rng.float rng *. 100.0 in
    Stats.Running.add r x;
    Stats.Sample.add s x
  done;
  Alcotest.(check bool) "means agree" true
    (Float.abs (Stats.Running.mean r -. Stats.Sample.mean s) < 1e-6);
  Alcotest.(check bool) "max agree" true (Stats.Running.max r = Stats.Sample.max s)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within [min,max] and is monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      let lo = Stats.Sample.min s and hi = Stats.Sample.max s in
      let ps = [ 0.0; 10.0; 50.0; 90.0; 99.0; 100.0 ] in
      let vals = List.map (Stats.Sample.percentile s) ps in
      List.for_all (fun v -> v >= lo -. 1e-9 && v <= hi +. 1e-9) vals
      && List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 5) vals) (List.tl vals))

(* ---------------------------- Histogram ---------------------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:1.0 ~hi:1000.0 ~bins:3 in
  Histogram.add h 2.0;
  Histogram.add h 50.0;
  Histogram.add h 500.0;
  Histogram.add h 0.5 (* clamps low *);
  Histogram.add h 5000.0 (* clamps high *);
  check Alcotest.int "count" 5 (Histogram.count h);
  check Alcotest.(array int) "counts" [| 2; 1; 2 |] (Histogram.counts h)

let test_histogram_cumulative () =
  let h = Histogram.create ~lo:1.0 ~hi:100.0 ~bins:2 in
  Histogram.add h 2.0;
  Histogram.add h 3.0;
  Histogram.add h 50.0;
  Histogram.add h 99.0;
  let c = Histogram.cumulative h in
  checkf "first half" 0.5 c.(0);
  checkf "total" 1.0 c.(1)

let test_histogram_invalid () =
  Alcotest.check_raises "bad bounds" (Invalid_argument "Histogram.create") (fun () ->
      ignore (Histogram.create ~lo:10.0 ~hi:1.0 ~bins:4))

(* --------------------------- Ascii table --------------------------- *)

let test_ascii_table () =
  let out = Bfc_util.Ascii_table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "1"; "22" ] ] in
  Alcotest.(check bool) "contains header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "4 lines + trailing" 5 (List.length lines)

let test_float_cell () =
  check Alcotest.string "nan" "-" (Bfc_util.Ascii_table.float_cell nan);
  check Alcotest.string "zero" "0" (Bfc_util.Ascii_table.float_cell 0.0);
  check Alcotest.string "mid" "3.14" (Bfc_util.Ascii_table.float_cell 3.14159)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng lognormal mean", `Quick, test_rng_lognormal_mean);
    ("rng normal moments", `Quick, test_rng_normal_moments);
    ("rng int extreme bounds", `Quick, test_rng_int_extreme_bounds);
    ("rng int bound one", `Quick, test_rng_int_bound_one);
    ("rng bernoulli invalid", `Quick, test_rng_bernoulli_invalid);
    ("rng bernoulli endpoints", `Quick, test_rng_bernoulli_endpoints);
    ("rng split deterministic", `Quick, test_rng_split_deterministic);
    ("rng split isolated", `Quick, test_rng_split_isolated);
    ("rng shuffle", `Quick, test_rng_shuffle_permutation);
    ("heap order", `Quick, test_heap_order);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap peek", `Quick, test_heap_peek);
    ("wheel order", `Quick, test_wheel_order);
    ("wheel fifo ties", `Quick, test_wheel_fifo_ties);
    ("wheel head_time", `Quick, test_wheel_head_time);
    ("wheel cascade far future", `Quick, test_wheel_cascade_far_future);
    ("wheel push below cursor", `Quick, test_wheel_push_below_cursor);
    ("wheel garbage purge", `Quick, test_wheel_garbage_purge);
    ("wheel clear", `Quick, test_wheel_clear);
    ("int_table basic", `Quick, test_int_table_basic);
    ("int_table find_exn", `Quick, test_int_table_find_exn);
    ("int_table growth", `Quick, test_int_table_growth);
    ("int_table counter", `Quick, test_counter_semantics);
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset rotation", `Quick, test_bitset_first_set_rotation);
    ("bitset bounds", `Quick, test_bitset_bounds);
    ("bitset fill", `Quick, test_bitset_fill);
    ("stats basic", `Quick, test_stats_basic);
    ("stats empty", `Quick, test_stats_empty);
    ("stats stddev", `Quick, test_stats_stddev);
    ("running matches sample", `Quick, test_running_matches_sample);
    ("histogram binning", `Quick, test_histogram_binning);
    ("histogram cumulative", `Quick, test_histogram_cumulative);
    ("histogram invalid", `Quick, test_histogram_invalid);
    ("ascii table", `Quick, test_ascii_table);
    ("float cell", `Quick, test_float_cell);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
    QCheck_alcotest.to_alcotest prop_int_table_model;
    QCheck_alcotest.to_alcotest prop_bitset_model;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
  ]
