(* Stress suite: the pause-storm / runtime-deadlock / victim-flow
   detectors fire on crafted pathologies (PFC on the CBD ring, PFC under
   flaps on the Clos), stay silent for BFC on deadlock-free fabrics, and
   the whole scenario machinery replays byte-identically from a seed. *)

module Time = Bfc_engine.Time
module Scheme = Bfc_sim.Scheme
module Exp_common = Bfc_sim.Exp_common
module Detect = Bfc_stress.Detect
module Scenario = Bfc_stress.Scenario
module Stress_exp = Bfc_stress.Stress_exp

let check = Alcotest.check

let wd = Time.us 50.0

let clos scheme scenario =
  Stress_exp.clos_cell Exp_common.Smoke ~scheme ~scenario ~watchdog:wd ~seed:1

let silent (c : Stress_exp.cell) =
  let r = c.Stress_exp.c_report in
  List.length r.Detect.r_storms = 0
  && List.length r.Detect.r_deadlocks = 0
  && List.length r.Detect.r_victims = 0

(* ------------------------------------------------------------------ *)
(* Ring leg: the crafted cyclic buffer dependency *)

let test_ring_pfc_deadlocks () =
  let c = Stress_exp.ring_cell Exp_common.Smoke Stress_exp.Ring_pfc in
  let r = c.Stress_exp.c_report in
  check Alcotest.int "fabric wedges: nothing completes" 0 c.Stress_exp.c_completed;
  Alcotest.(check bool) "runtime deadlock flagged" true (List.length r.Detect.r_deadlocks >= 1);
  List.iter
    (fun d ->
      Alcotest.(check bool) "witness cycle is long enough to be real" true
        (List.length d.Detect.dl_cycle >= 2);
      Alcotest.(check bool) "every witness edge statically dangerous" true
        d.Detect.dl_static_dangerous)
    r.Detect.r_deadlocks;
  Alcotest.(check bool) "port-level storms rage while wedged" true (r.Detect.r_storm_ports >= 1)

let test_ring_bfc_unprotected_deadlocks () =
  let c = Stress_exp.ring_cell Exp_common.Smoke Stress_exp.Ring_bfc_unprotected in
  let r = c.Stress_exp.c_report in
  check Alcotest.int "fabric wedges: nothing completes" 0 c.Stress_exp.c_completed;
  Alcotest.(check bool) "runtime deadlock flagged" true (List.length r.Detect.r_deadlocks >= 1);
  (* BFC pauses queues, never ports: no PFC-style storm even while wedged *)
  check Alcotest.int "still no port-level storm" 0 (List.length r.Detect.r_storms)

let test_ring_bfc_filtered_silent () =
  let c = Stress_exp.ring_cell Exp_common.Smoke Stress_exp.Ring_bfc_filtered in
  check Alcotest.int "all flows complete" c.Stress_exp.c_injected c.Stress_exp.c_completed;
  Alcotest.(check bool) "every detector silent" true (silent c)

(* ------------------------------------------------------------------ *)
(* Clos leg *)

let test_bfc_clos_silent () =
  (* Clos shortest-path routing is statically deadlock-free and BFC never
     pauses whole ports: all three detectors must stay quiet, clean or
     under adversity. *)
  List.iter
    (fun scenario ->
      let c = clos Scheme.bfc scenario in
      check Alcotest.int
        (Printf.sprintf "all flows complete under %s" scenario.Scenario.sc_name)
        c.Stress_exp.c_injected c.Stress_exp.c_completed;
      Alcotest.(check bool)
        (Printf.sprintf "detectors silent under %s" scenario.Scenario.sc_name)
        true (silent c))
    [ Scenario.clean; Scenario.resume_loss () ]

let test_pfc_clos_flap_storms () =
  let c = clos Scheme.pfc_only (Scenario.flap_storm ()) in
  let r = c.Stress_exp.c_report in
  Alcotest.(check bool) "pause storms detected" true (List.length r.Detect.r_storms >= 1);
  check Alcotest.int "but no deadlock on a deadlock-free Clos" 0
    (List.length r.Detect.r_deadlocks)

let test_pfc_clos_victims () =
  (* head-of-line victims exist even on the clean run: port-level pauses
     punish flows that never congested the paused queue *)
  let c = clos Scheme.pfc_only Scenario.clean in
  let r = c.Stress_exp.c_report in
  Alcotest.(check bool) "victim flows classified" true (List.length r.Detect.r_victims >= 1);
  List.iter
    (fun v ->
      Alcotest.(check bool) "victim slowdown above threshold" true
        (v.Detect.v_slowdown >= Detect.default_config.Detect.d_victim_slowdown);
      Alcotest.(check bool) "victim pause overlap positive" true (v.Detect.v_pause_ns > 0))
    r.Detect.r_victims

(* ------------------------------------------------------------------ *)
(* Replay determinism *)

let test_scenario_seed_determinism () =
  let h = Time.ms 1.0 in
  let a = Scenario.random_storm ~seed:78 ~horizon:h in
  let b = Scenario.random_storm ~seed:78 ~horizon:h in
  check Alcotest.string "same seed renders identically" (Scenario.to_string a)
    (Scenario.to_string b);
  let d = Scenario.random_storm ~seed:79 ~horizon:h in
  Alcotest.(check bool) "different seed differs" true
    (Scenario.to_string a <> Scenario.to_string d)

let test_replay_byte_identical () =
  let run () =
    let sc = Scenario.random_storm ~seed:78 ~horizon:(Time.ms 1.0) in
    let c =
      Stress_exp.clos_cell Exp_common.Smoke ~scheme:Scheme.pfc_only ~scenario:sc ~watchdog:wd
        ~seed:3
    in
    ( Detect.summary c.Stress_exp.c_report,
      Printf.sprintf "%d/%d drops=%d wdog=%d done=%d" c.Stress_exp.c_completed
        c.Stress_exp.c_injected c.Stress_exp.c_drops c.Stress_exp.c_watchdog
        c.Stress_exp.c_t_done )
  in
  let s1, m1 = run () in
  let s2, m2 = run () in
  check Alcotest.string "detector report replays byte-identically" s1 s2;
  check Alcotest.string "run metrics replay byte-identically" m1 m2

let suite =
  [
    Alcotest.test_case "ring pfc deadlocks" `Quick test_ring_pfc_deadlocks;
    Alcotest.test_case "ring bfc unprotected deadlocks" `Quick
      test_ring_bfc_unprotected_deadlocks;
    Alcotest.test_case "ring bfc filtered silent" `Quick test_ring_bfc_filtered_silent;
    Alcotest.test_case "bfc clos silent" `Quick test_bfc_clos_silent;
    Alcotest.test_case "pfc clos flap storms" `Quick test_pfc_clos_flap_storms;
    Alcotest.test_case "pfc clos victims" `Quick test_pfc_clos_victims;
    Alcotest.test_case "scenario seed determinism" `Quick test_scenario_seed_determinism;
    Alcotest.test_case "replay byte identical" `Quick test_replay_byte_identical;
  ]
